"""Compound scenarios: a victim workload under fleet noise, attacked mid-trace.

The paper's evaluation runs one victim workload against one attack on a
quiet device.  Real deployments are noisier: the victim shares the
device with background tenants whose block streams keep writing before,
during and after the attack.  A :class:`CompoundScenarioSpec` composes

* a **foreground** :class:`~repro.api.spec.ScenarioSpec` (the victim
  workload, defense, device and attack -- unchanged semantics, old
  specs and their hashes untouched),
* a tuple of :class:`BackgroundStream` fleet-noise streams -- profiled
  ``trace-<volume>`` block workloads replayed as separate processes
  (distinct stream ids in the device's oplog and forensic trace), and
* an ``attack_offset`` in ``(0, 1]`` -- the fraction of the merged
  background trace replayed *before* the staged attack strikes; the
  remainder replays after it, so detection and the evidence chain are
  exercised under post-attack noise.

Execution goes through the existing :class:`~repro.api.session.Session`
and :class:`~repro.api.events.EventBus` -- the composite workload is an
ordinary workload callable, the attack is the spec's attack, and every
byte of noise is derived from the foreground seed the SHA-256 way, so
compound runs are bit-identical across backends.  The spec is
schema-versioned and hash-stable
(:data:`COMPOUND_SPEC_VERSION`, :meth:`CompoundScenarioSpec.spec_hash`)
exactly like plain specs.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api.spec import ScenarioSpec, SpecValidationError
from repro.campaign import registries
from repro.campaign.seeding import derive_seed

#: Bump when the compound spec schema changes; readers refuse newer.
COMPOUND_SPEC_VERSION = 1


@dataclass(frozen=True)
class BackgroundStream:
    """One background fleet-noise stream of a compound scenario.

    ``workload`` must be a ``trace-<volume>`` registry name (block-level
    noise only: file-level activities would edit the victim's files and
    change the foreground scenario itself).  ``hours`` is seconds of
    original trace time, matching the trace workloads' interpretation
    of ``user_activity_hours``.
    """

    workload: str = "trace-hm"
    hours: float = 0.5

    def __post_init__(self) -> None:
        if self.workload not in registries.WORKLOADS or not self.workload.startswith(
            "trace-"
        ):
            known = sorted(
                name for name in registries.WORKLOADS if name.startswith("trace-")
            )
            raise SpecValidationError(
                f"background stream workload must be a trace-replay registry "
                f"name, got {self.workload!r}; known: {known}",
                field="workload",
            )
        if (
            isinstance(self.hours, bool)
            or not isinstance(self.hours, (int, float))
            or not math.isfinite(self.hours)
            or self.hours <= 0
        ):
            raise SpecValidationError(
                f"background stream hours must be a finite positive number, "
                f"got {self.hours!r}",
                field="hours",
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the stream."""
        return {"workload": self.workload, "hours": self.hours}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BackgroundStream":
        """Rebuild a stream, refusing unknown fields."""
        unknown = sorted(set(data) - {"workload", "hours"})
        if unknown:
            raise SpecValidationError(
                f"unknown background stream fields: {unknown}", field=unknown[0]
            )
        return cls(**data)  # type: ignore[arg-type]


@dataclass(frozen=True)
class CompoundScenarioSpec:
    """A foreground scenario composed with staged background noise.

    The foreground spec is embedded unchanged -- its own hash, seeds and
    validation are untouched, so every pre-compound artifact remains
    byte-identical.  The compound layer adds only the noise streams and
    the attack's position inside the merged noise trace.
    """

    foreground: ScenarioSpec = field(default_factory=ScenarioSpec)
    background: Tuple[BackgroundStream, ...] = ()
    #: Fraction of the merged background trace replayed before the
    #: attack strikes; the rest replays after scoring-time noise.
    attack_offset: float = 0.5

    def __post_init__(self) -> None:
        if not isinstance(self.foreground, ScenarioSpec):
            raise SpecValidationError(
                f"foreground must be a ScenarioSpec, got "
                f"{type(self.foreground).__name__}",
                field="foreground",
            )
        streams = tuple(self.background)
        for stream in streams:
            if not isinstance(stream, BackgroundStream):
                raise SpecValidationError(
                    f"background entries must be BackgroundStream, got "
                    f"{type(stream).__name__}",
                    field="background",
                )
        object.__setattr__(self, "background", streams)
        if (
            isinstance(self.attack_offset, bool)
            or not isinstance(self.attack_offset, (int, float))
            or not math.isfinite(self.attack_offset)
            or not 0.0 < self.attack_offset <= 1.0
        ):
            raise SpecValidationError(
                f"attack_offset must be within (0, 1], got "
                f"{self.attack_offset!r}",
                field="attack_offset",
            )

    # -- identity ----------------------------------------------------------

    @property
    def compound_key(self) -> str:
        """Stable identifier: the foreground key plus the noise shape."""
        return (
            f"{self.foreground.scenario_key}"
            f"+bg{len(self.background)}@{self.attack_offset:g}"
        )

    def background_seed(self, index: int) -> int:
        """The trace seed of background stream ``index`` (SHA-256 derived)."""
        return derive_seed(
            self.foreground.seed,
            "compound-background",
            index,
            self.background[index].workload,
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view: version, foreground spec, streams, offset."""
        return {
            "version": COMPOUND_SPEC_VERSION,
            "foreground": self.foreground.to_dict(),
            "background": [stream.to_dict() for stream in self.background],
            "attack_offset": self.attack_offset,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CompoundScenarioSpec":
        """Rebuild a compound spec, refusing newer schema versions."""
        payload = dict(data)
        raw_version = payload.pop("version", 1)
        if not isinstance(raw_version, int) or isinstance(raw_version, bool):
            raise SpecValidationError(
                f"compound spec version must be an integer, got {raw_version!r}",
                version=raw_version,
            )
        if raw_version > COMPOUND_SPEC_VERSION:
            raise SpecValidationError(
                f"compound spec version {raw_version} is newer than supported "
                f"version {COMPOUND_SPEC_VERSION}",
                version=raw_version,
            )
        unknown = sorted(set(payload) - {"foreground", "background", "attack_offset"})
        if unknown:
            raise SpecValidationError(
                f"unknown compound spec fields: {unknown}", field=unknown[0]
            )
        foreground = payload.get("foreground")
        if not isinstance(foreground, dict):
            raise SpecValidationError(
                f"compound spec field 'foreground' must be an object, got "
                f"{foreground!r}",
                field="foreground",
            )
        background = payload.get("background", [])
        if not isinstance(background, (list, tuple)):
            raise SpecValidationError(
                f"compound spec field 'background' must be a list, got "
                f"{background!r}",
                field="background",
            )
        return cls(
            foreground=ScenarioSpec.from_dict(foreground),
            background=tuple(
                BackgroundStream.from_dict(stream) for stream in background
            ),
            attack_offset=payload.get("attack_offset", 0.5),  # type: ignore[arg-type]
        )

    def to_json(self) -> str:
        """Canonical serialization: stable key order, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CompoundScenarioSpec":
        """Parse a compound spec from its canonical JSON text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the canonical JSON serialization to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "CompoundScenarioSpec":
        """Read a compound spec previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def spec_hash(self) -> str:
        """SHA-256 of the canonical JSON form (stable across processes)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


@dataclass
class CompoundResult:
    """Scored outcome of one compound scenario (picklable, JSON-ready)."""

    #: The compound spec's canonical hash (uniform with plain results).
    spec_hash: str
    compound_key: str
    spec: Dict[str, object]
    # -- foreground scoring (same semantics as a plain session) -----------
    recovery_fraction: float
    pages_recovered: int
    defended: bool
    detected: bool
    detection_latency_us: Optional[int]
    write_amplification: float
    host_commands: int
    oplog_hash: Optional[str]
    # -- noise accounting --------------------------------------------------
    #: Merged background records replayed before / after the attack.
    background_records_pre: int
    background_records_post: int
    # -- post-noise re-checks ----------------------------------------------
    #: Whether the defense still reports detection after post-attack noise.
    post_noise_detected: bool
    #: Evidence-chain trustworthiness after post-attack noise (RSSD only).
    post_noise_chain_trustworthy: Optional[bool]
    #: Published event counts by event-type name, after everything ran.
    events: Dict[str, int]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (field names preserved verbatim)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CompoundResult":
        """Rebuild a result from its :meth:`to_dict` form."""
        return cls(**data)  # type: ignore[arg-type]


def run_compound(spec: CompoundScenarioSpec) -> CompoundResult:
    """Execute one compound scenario through the Session lifecycle.

    The composite workload runs the foreground activity, then replays
    the pre-offset slice of the merged background trace; the session
    then executes the staged attack and scores it exactly like a plain
    run.  Afterwards the post-offset noise replays against the live
    device and the defense is re-interrogated -- did detection survive
    the noise, is the evidence chain still trustworthy?  Module-level
    and spec-in/result-out so process pools can ship it to workers.
    """
    import random as random_module

    from repro.api.session import Session
    from repro.workloads.records import TraceRecord, merge_traces
    from repro.workloads.replay import TraceReplayer

    foreground = spec.foreground
    post_records: List[TraceRecord] = []
    noise_counts = {"pre": 0, "post": 0}

    def composite_workload(
        env: object, rng: "random_module.Random", hours: float, fraction: float
    ) -> None:
        registries.WORKLOADS[foreground.workload](env, rng, hours, fraction)  # type: ignore[arg-type]
        if not spec.background:
            return
        from repro.analysis.retention import lookup_volume
        from repro.workloads.synthetic import profile_workload

        traces = []
        for index, stream in enumerate(spec.background):
            process = env.registry.spawn(f"bg-noise-{index}-{stream.workload}")  # type: ignore[attr-defined]
            profile = lookup_volume(stream.workload[len("trace-"):])
            traces.append(
                profile_workload(
                    profile,
                    capacity_pages=env.device.capacity_pages // 2,  # type: ignore[attr-defined]
                    duration_s=stream.hours,
                    seed=spec.background_seed(index),
                    stream_id=process.stream_id,
                    time_compression=30_000.0,
                )
            )
        merged = merge_traces(*traces)
        split = int(len(merged) * spec.attack_offset)
        pre = merged[:split]
        post_records.extend(merged[split:])
        noise_counts["pre"] = len(pre)
        noise_counts["post"] = len(merged) - len(pre)
        if pre:
            TraceReplayer(env.device, honor_timestamps=False).replay(pre)  # type: ignore[arg-type]

    session = Session(foreground, workload=composite_workload)
    result = session.run()

    assert session.defense is not None and session.env is not None
    if post_records:
        TraceReplayer(session.env.device, honor_timestamps=False).replay(  # type: ignore[arg-type]
            post_records
        )
    post_noise_detected = session.defense.detect()
    engine = session.defense.forensics_engine()
    post_noise_chain_trustworthy: Optional[bool] = None
    if engine is not None:
        post_noise_chain_trustworthy = engine.verify_chain().trustworthy

    return CompoundResult(
        spec_hash=spec.spec_hash(),
        compound_key=spec.compound_key,
        spec=spec.to_dict(),
        recovery_fraction=result.recovery_fraction,
        pages_recovered=result.pages_recovered,
        defended=result.defended,
        detected=result.detected,
        detection_latency_us=result.detection_latency_us,
        write_amplification=result.write_amplification,
        host_commands=result.host_commands,
        oplog_hash=result.oplog_hash,
        background_records_pre=noise_counts["pre"],
        background_records_post=noise_counts["post"],
        post_noise_detected=post_noise_detected,
        post_noise_chain_trustworthy=post_noise_chain_trustworthy,
        events={name: count for name, count in session.bus.published_counts.items()},
    )
