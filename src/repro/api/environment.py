"""Victim-environment provisioning for the scenario facade.

This is the canonical implementation of what used to be
:func:`repro.attacks.base.build_environment`; the old name still works
as a deprecation shim that delegates here.  A *victim environment* is a
populated file system on a device, plus the process registry that tags
benign and malicious I/O streams -- everything an attack or workload
needs to run.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.attacks.base import AttackEnvironment
from repro.host.blockdev import HostBlockDevice
from repro.host.filesystem import SimpleFS
from repro.host.process import Privilege, ProcessRegistry
from repro.sim import SimClock


def provision_environment(
    device: object,
    victim_files: int = 24,
    file_size_bytes: int = 8192,
    seed: int = 23,
    rng: Optional[random.Random] = None,
) -> AttackEnvironment:
    """Create a victim environment with ``victim_files`` populated documents.

    ``device`` is anything speaking the SSD block interface (a plain
    :class:`~repro.ssd.device.SSD`, an :class:`~repro.core.rssd.RSSD`,
    or a defense's device).  ``seed`` drives both the file contents and
    (unless an explicit ``rng`` is supplied) the environment's random
    stream, so a given ``(device, seed)`` pair always produces the same
    victim.  :meth:`repro.api.Session.provision` calls this with the
    spec's derived environment seed; standalone consumers (the examples,
    custom experiments) call it directly.
    """
    clock: SimClock = device.clock  # type: ignore[attr-defined]
    registry = ProcessRegistry()
    user = registry.spawn("user-workload", privilege=Privilege.USER)
    attacker = registry.spawn(
        "ransomware", privilege=Privilege.ADMIN, is_malicious=True
    )
    blockdev = HostBlockDevice(device, stream_id=user.stream_id)  # type: ignore[arg-type]
    fs = SimpleFS(blockdev)
    fs.populate(victim_files, file_size_bytes, seed=seed)
    return AttackEnvironment(
        clock=clock,
        device=device,
        blockdev=blockdev,
        fs=fs,
        registry=registry,
        user_process=user,
        attacker_process=attacker,
        rng=rng if rng is not None else random.Random(seed),
    )
