"""Session: the lifecycle object that executes one scenario.

A :class:`Session` takes a :class:`~repro.api.spec.ScenarioSpec` (or
explicit factory overrides, for callers outside the registries) through
the canonical lifecycle::

    session = Session(spec)
    session.provision()   # clock, defense, device, event taps, victim FS
    session.run()         # workload -> attack -> scoring
    session.result        # SessionResult (picklable scores + live objects)

``provision()`` and ``run()`` are idempotent-by-construction in the
sense that ``run()`` provisions on demand and refuses to run twice; the
views -- :meth:`Session.metrics`, :meth:`Session.detection`,
:meth:`Session.forensics` -- are built lazily from the live scenario
objects and cached.

The session owns the :class:`~repro.sim.SimClock` and derives every
random stream from the spec the same SHA-256 way the campaign engine
does, so a campaign cell executed through a session is bit-identical to
the historical engine path (the golden-run suite pins this).  All
observation flows through the session's typed
:class:`~repro.api.events.EventBus`: the device's host-op stream, GC
passes, NVMe-oE offload capsules and retention evictions are published
as events, and the forensic :class:`~repro.forensics.pitr.TraceRecorder`
is just another subscriber.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.campaign.results import CellResult

from repro.api.events import (
    DetectionEvent,
    EventBus,
    GCEvent,
    HostOpEvent,
    OffloadEvent,
    RetentionEvictEvent,
)
from repro.api.spec import ScenarioSpec
from repro.attacks.base import AttackEnvironment, AttackOutcome
from repro.defenses.base import Defense, ForensicsEngineLike
from repro.defenses.matrix import DEFENDED_THRESHOLD
from repro.forensics import TraceRecorder, reference_image
from repro.sim import SimClock
from repro.ssd.device import HostOp
from repro.ssd.geometry import SSDGeometry


@dataclass
class SessionResult:
    """Everything needed to grade one executed scenario.

    The forensic fields are populated only for defenses that support
    forensics (an evidence chain to analyze); ``defense`` keeps the live
    defense object so in-process consumers (the ``repro recover`` CLI,
    the session views) can keep interrogating the scenario after it was
    scored.  A :class:`SessionResult` never crosses a process boundary
    -- workers reduce it to a picklable
    :class:`~repro.campaign.results.CellResult` via
    :meth:`to_cell_result`.
    """

    attack_outcome: AttackOutcome
    recovery_fraction: float
    pages_recovered: int
    defended: bool
    detected: bool
    detection_latency_us: Optional[int]
    compromised: bool
    write_amplification: float
    mean_write_latency_us: float
    mean_read_latency_us: float
    host_commands: int
    flash_pages_programmed: int
    oplog_hash: Optional[str]
    # -- forensics --------------------------------------------------------
    exact_pages_recovered: Optional[int] = None
    exact_pages_lost: Optional[int] = None
    recovery_exact: Optional[bool] = None
    forensic_pattern: Optional[str] = None
    first_malicious_us: Optional[int] = None
    blast_radius_pages: Optional[int] = None
    remote_time_order_ok: Optional[bool] = None
    integrity_errors: List[str] = field(default_factory=list)
    # -- live scenario objects (in-process consumers only) ----------------
    defense: Optional[Defense] = None
    recorder: Optional[TraceRecorder] = None
    spec: Optional[ScenarioSpec] = None

    def to_cell_result(self) -> "CellResult":
        """Reduce to a picklable campaign :class:`~repro.campaign.results.CellResult`.

        Requires a session built from a :class:`ScenarioSpec` (the cell
        identity -- names and seeds -- comes from it).
        """
        from repro.campaign.results import CellResult

        if self.spec is None:
            raise ValueError(
                "this result was produced from explicit factory overrides, "
                "not a (faithful) ScenarioSpec; cell results need the spec's "
                "names and seeds to reproduce the run"
            )
        outcome = self.attack_outcome
        spec = self.spec
        return CellResult(
            cell_key=spec.scenario_key,
            defense=spec.defense,
            attack=spec.attack,
            workload=spec.workload,
            device_config=spec.device,
            recovery_fraction=self.recovery_fraction,
            defended=self.defended,
            victim_pages=len(outcome.victim_lbas),
            pages_recovered=self.pages_recovered,
            detected=self.detected,
            detection_latency_us=self.detection_latency_us,
            compromised=self.compromised,
            attack_duration_us=outcome.duration_us,
            write_amplification=self.write_amplification,
            mean_write_latency_us=self.mean_write_latency_us,
            mean_read_latency_us=self.mean_read_latency_us,
            host_commands=self.host_commands,
            flash_pages_programmed=self.flash_pages_programmed,
            oplog_hash=self.oplog_hash,
            env_seed=spec.resolved_env_seed,
            workload_seed=spec.resolved_workload_seed,
            attack_seed=spec.resolved_attack_seed,
            exact_pages_recovered=self.exact_pages_recovered,
            exact_pages_lost=self.exact_pages_lost,
            recovery_exact=self.recovery_exact,
            forensic_pattern=self.forensic_pattern,
            first_malicious_us=self.first_malicious_us,
            blast_radius_pages=self.blast_radius_pages,
            remote_time_order_ok=self.remote_time_order_ok,
            integrity_errors=list(self.integrity_errors),
        )

    def to_dict(self) -> dict:
        """JSON-ready view: the spec plus the picklable cell scores."""
        return {
            "spec": self.spec.to_dict() if self.spec is not None else None,
            "result": self.to_cell_result().to_dict(),
        }


@dataclass(frozen=True)
class MetricsView:
    """Lazily-built I/O overhead summary of a session's device."""

    write_amplification: float
    mean_write_latency_us: float
    mean_read_latency_us: float
    host_reads: int
    host_writes: int
    host_trims: int
    host_flushes: int
    flash_pages_programmed: int
    gc_invocations: int

    @property
    def host_commands(self) -> int:
        """Total host commands the device completed."""
        return self.host_reads + self.host_writes + self.host_trims + self.host_flushes


@dataclass(frozen=True)
class DetectionView:
    """Lazily-built detection summary of an executed session.

    ``detection_time_us`` is the defense's own trigger time (the same
    source ``detection_latency_us`` is computed from, so the two always
    agree); per-detector trigger times live on the individual
    :class:`~repro.api.events.DetectionEvent` records in ``events``.
    """

    detected: bool
    detection_time_us: Optional[int]
    detection_latency_us: Optional[int]
    events: Tuple[DetectionEvent, ...] = ()


def score_recovery(
    defense: Defense, env: AttackEnvironment, outcome: AttackOutcome
) -> tuple:
    """Fraction of victim pages whose pre-attack version is producible."""
    recovered = 0
    total = 0
    for lba in outcome.victim_lbas:
        original = outcome.original_fingerprints.get(lba)
        if original is None:
            continue
        total += 1
        live = env.device.read_content(lba)  # type: ignore[attr-defined]
        if live is not None and live.fingerprint == original:
            recovered += 1
            continue
        version = defense.pre_attack_version(lba, outcome.start_us)
        if version is not None and version.fingerprint == original:
            recovered += 1
    fraction = recovered / total if total else 0.0
    return fraction, recovered


def score_forensics(
    defense: Defense,
    outcome: AttackOutcome,
    recorder: Optional[TraceRecorder],
) -> dict:
    """Exact post-attack metrics for defenses with an evidence chain.

    Runs the full forensic pipeline -- chain + remote-order verification,
    attack classification, and a read-only point-in-time rebuild of the
    pre-attack image -- and checks the rebuilt image page for page
    against an independent replay of the recorded command-stream prefix.
    Defenses whose :meth:`~repro.defenses.base.Defense.forensics_engine`
    returns ``None`` (the capability protocol, shared with the
    ``repro recover`` CLI) get the all-``None`` defaults.
    """
    engine = defense.forensics_engine()
    if engine is None:
        return {}
    status = engine.verify_chain()
    classification = engine.classify()
    image = engine.recover_to(outcome.start_us)
    exact = image.is_exact
    if recorder is not None:
        exact = exact and image.matches(reference_image(recorder.ops, outcome.start_us))
    return {
        "exact_pages_recovered": image.pages_recovered,
        "exact_pages_lost": image.pages_lost,
        "recovery_exact": exact,
        "forensic_pattern": classification.pattern,
        "first_malicious_us": classification.first_malicious_us,
        "blast_radius_pages": classification.blast_radius_pages,
        "remote_time_order_ok": status.remote_time_order_ok,
        "integrity_errors": status.errors(),
    }


class _BusForwarder:
    """Device observer that republishes host ops as typed bus events.

    This sits on the device's per-command hot path, so it only
    constructs a :class:`HostOpEvent` when someone is subscribed; a
    subscriber-less session pays one dict lookup and a counter bump per
    op, nothing more.
    """

    def __init__(self, bus: EventBus) -> None:
        self._bus = bus

    def on_host_op(self, op: HostOp) -> None:
        """Observer hook: publish one completed host command."""
        bus = self._bus
        if bus.has_subscribers(HostOpEvent):
            bus.publish(HostOpEvent(timestamp_us=op.timestamp_us, op=op))
        else:
            bus.count_discarded(HostOpEvent)


class Session:
    """One scenario's lifecycle: ``provision() -> run() -> result``.

    Built either from a validated :class:`~repro.api.spec.ScenarioSpec`
    (names resolved through the campaign registries) or from explicit
    factory overrides for consumers outside the registries (the
    capability matrix's historical fixed-seed path uses overrides).
    Overrides win over the spec field by field, so a spec can be
    partially overridden -- e.g. the same named scenario on a custom
    geometry.

    ``observers`` is the legacy passive-observer hook; each observer is
    subscribed to the session's bus and fed the raw host-op stream,
    exactly as if it had been attached to the device directly.
    """

    def __init__(
        self,
        spec: Optional[ScenarioSpec] = None,
        *,
        bus: Optional[EventBus] = None,
        defense_factory: Optional[Callable[[SSDGeometry, SimClock], Defense]] = None,
        attack_factory: Optional[Callable[[], object]] = None,
        workload: Optional[
            Callable[[AttackEnvironment, random.Random, float, float], None]
        ] = None,
        geometry: Optional[SSDGeometry] = None,
        victim_files: Optional[int] = None,
        file_size_bytes: Optional[int] = None,
        user_activity_hours: Optional[float] = None,
        recent_edit_fraction: Optional[float] = None,
        env_seed: Optional[int] = None,
        workload_rng: Optional[random.Random] = None,
        observers: Sequence[object] = (),
    ) -> None:
        if spec is None:
            required = {
                "defense_factory": defense_factory,
                "attack_factory": attack_factory,
                "workload": workload,
                "geometry": geometry,
                "victim_files": victim_files,
                "file_size_bytes": file_size_bytes,
                "user_activity_hours": user_activity_hours,
                "recent_edit_fraction": recent_edit_fraction,
                "env_seed": env_seed,
                "workload_rng": workload_rng,
            }
            missing = [name for name, value in required.items() if value is None]
            if missing:
                raise ValueError(
                    "a Session needs either a ScenarioSpec or explicit "
                    f"overrides; missing: {missing}"
                )
        self._spec_faithful = spec is not None
        if spec is not None:
            # Fold spec-representable overrides back into the spec, so the
            # result's provenance (to_cell_result / to_dict) records what
            # actually ran, not what the original spec said.
            representable = {
                name: value
                for name, value in (
                    ("victim_files", victim_files),
                    ("file_size_bytes", file_size_bytes),
                    ("user_activity_hours", user_activity_hours),
                    ("recent_edit_fraction", recent_edit_fraction),
                    ("env_seed", env_seed),
                )
                if value is not None
            }
            if representable:
                spec = replace(spec, **representable)
            # Factory/geometry/rng overrides cannot be expressed as spec
            # fields; a result produced with them must not claim the
            # spec reproduces it.
            if any(
                override is not None
                for override in (
                    defense_factory, attack_factory, workload, geometry, workload_rng
                )
            ):
                self._spec_faithful = False
        self.spec = spec
        self.bus = bus if bus is not None else EventBus()
        self._defense_factory = defense_factory
        self._attack_factory = attack_factory
        self._workload = workload
        self._geometry = geometry
        self._victim_files = victim_files
        self._file_size_bytes = file_size_bytes
        self._user_activity_hours = user_activity_hours
        self._recent_edit_fraction = recent_edit_fraction
        self._env_seed = env_seed
        self._workload_rng = workload_rng
        self._observers = tuple(observers)

        self.clock: Optional[SimClock] = None
        self.defense: Optional[Defense] = None
        self.env: Optional[AttackEnvironment] = None
        self._recorder: Optional[TraceRecorder] = None
        self._result: Optional[SessionResult] = None
        self._forensics_cache: Optional[object] = None
        self._detection_cache: Optional[DetectionView] = None
        self._detection_events: List[DetectionEvent] = []
        self._detected_at_us: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def provisioned(self) -> bool:
        """Whether :meth:`provision` has run."""
        return self.defense is not None

    @property
    def executed(self) -> bool:
        """Whether :meth:`run` has completed."""
        return self._result is not None

    def provision(self) -> "Session":
        """Build the scenario: clock, defense, device taps, victim file system.

        Returns ``self`` for chaining.  Provisioning twice is an error
        (a session is one scenario; build a new session to re-run).
        """
        from repro.api.environment import provision_environment
        from repro.campaign import registries

        if self.provisioned:
            raise RuntimeError("session already provisioned")
        self.clock = SimClock()
        geometry = self._geometry
        if geometry is None:
            assert self.spec is not None
            geometry = registries.DEVICE_CONFIGS[self.spec.device]()
        defense_factory = self._defense_factory
        if defense_factory is None:
            assert self.spec is not None
            defense_factory = registries.DEFENSES[self.spec.defense]
        self.defense = defense_factory(geometry, self.clock)
        if self.spec is not None and self.spec.ablation:
            from repro.ablation.registry import apply_ablation

            apply_ablation(self.defense, self.spec.ablation)
        self._wire_bus(self.defense)
        self.env = provision_environment(
            self.defense.device,
            victim_files=self._resolved("victim_files", self._victim_files),
            file_size_bytes=self._resolved("file_size_bytes", self._file_size_bytes),
            seed=self._resolved_env_seed(),
        )
        return self

    def run(self) -> SessionResult:
        """Execute the scenario (provisioning on demand) and score it.

        Runs the pre-attack workload, lets aggressive attacks disable
        host-resident defenses, executes the attack, and scores
        recovery, detection, overhead and (where supported) exact
        forensics.  Returns the :class:`SessionResult`, also available
        as :attr:`result`.
        """
        from repro.campaign import registries

        if self.executed:
            raise RuntimeError("session already ran; build a new session to re-run")
        if not self.provisioned:
            self.provision()
        assert self.defense is not None and self.env is not None
        defense, env, spec = self.defense, self.env, self.spec

        workload = self._workload
        if workload is None:
            assert spec is not None
            workload = registries.WORKLOADS[spec.workload]
        workload_rng = self._workload_rng
        if workload_rng is None:
            assert spec is not None
            workload_rng = random.Random(spec.resolved_workload_seed)
        workload(
            env,
            workload_rng,
            self._resolved("user_activity_hours", self._user_activity_hours),
            self._resolved("recent_edit_fraction", self._recent_edit_fraction),
        )

        attack_factory = self._attack_factory
        if attack_factory is None:
            assert spec is not None
            attack_factory = lambda: registries.ATTACKS[spec.attack](
                spec.resolved_attack_seed
            )
        attack = attack_factory()
        compromised = False
        if getattr(attack, "aggressive", False):
            compromised = defense.compromise()
        outcome: AttackOutcome = attack.execute(env)  # type: ignore[attr-defined]
        fraction, recovered = score_recovery(defense, env, outcome)

        detected = defense.detect()
        detection_latency_us: Optional[int] = None
        detected_at: Optional[int] = None
        if detected:
            detected_at = defense.detection_time_us()
            if detected_at is not None:
                detection_latency_us = max(0, detected_at - outcome.start_us)
            else:
                # The defense flags but cannot timestamp the trigger: bound
                # the latency by the end of the attack.
                detection_latency_us = outcome.duration_us
        self._detected_at_us = detected_at
        self._publish_detection(defense, detected, detected_at)

        device = defense.device
        metrics = device.metrics  # type: ignore[attr-defined]
        oplog = getattr(device, "oplog", None)

        forensics = score_forensics(defense, outcome, self._recorder)
        self._result = SessionResult(
            **forensics,
            defense=defense,
            recorder=self._recorder,
            spec=spec if self._spec_faithful else None,
            attack_outcome=outcome,
            recovery_fraction=fraction,
            pages_recovered=recovered,
            defended=fraction >= DEFENDED_THRESHOLD,
            detected=detected,
            detection_latency_us=detection_latency_us,
            compromised=compromised,
            write_amplification=metrics.write_amplification,
            mean_write_latency_us=metrics.latency["write"].mean_us,
            mean_read_latency_us=metrics.latency["read"].mean_us,
            host_commands=(
                metrics.host_reads
                + metrics.host_writes
                + metrics.host_trims
                + metrics.host_flushes
            ),
            flash_pages_programmed=metrics.flash_pages_programmed,
            oplog_hash=oplog.chain.head.hex() if oplog is not None else None,
        )
        return self._result

    @property
    def result(self) -> SessionResult:
        """The scored outcome; raises if the session has not run yet."""
        if self._result is None:
            raise RuntimeError("session has not run yet; call run() first")
        return self._result

    # -- lazily-built views ------------------------------------------------

    def metrics(self) -> MetricsView:
        """I/O overhead view of the session's device (provision first)."""
        if not self.provisioned:
            raise RuntimeError("session not provisioned yet; call provision() first")
        assert self.defense is not None
        metrics = self.defense.device.metrics  # type: ignore[attr-defined]
        return MetricsView(
            write_amplification=metrics.write_amplification,
            mean_write_latency_us=metrics.latency["write"].mean_us,
            mean_read_latency_us=metrics.latency["read"].mean_us,
            host_reads=metrics.host_reads,
            host_writes=metrics.host_writes,
            host_trims=metrics.host_trims,
            host_flushes=metrics.host_flushes,
            flash_pages_programmed=metrics.flash_pages_programmed,
            gc_invocations=metrics.gc_invocations,
        )

    def detection(self) -> DetectionView:
        """Detection summary of the executed session (cached)."""
        if self._detection_cache is None:
            result = self.result
            self._detection_cache = DetectionView(
                detected=result.detected,
                detection_time_us=self._detected_at_us,
                detection_latency_us=result.detection_latency_us,
                events=tuple(self._detection_events),
            )
        return self._detection_cache

    def forensics(self) -> "Optional[ForensicsEngineLike]":
        """The defense's post-attack analysis engine, or ``None`` (cached).

        Available for defenses with ``supports_forensics`` (structurally
        a :class:`~repro.defenses.base.ForensicsEngineLike`); the view is
        bound to the live device, so it reflects everything up to the
        moment it is queried.
        """
        if self._forensics_cache is None:
            if not self.provisioned:
                raise RuntimeError(
                    "session not provisioned yet; call provision() first"
                )
            assert self.defense is not None
            self._forensics_cache = self.defense.forensics_engine()
        return self._forensics_cache

    # -- internals ---------------------------------------------------------

    def _resolved(self, name: str, override: Optional[object]) -> object:
        """An override if given, else the spec's field of the same name."""
        if override is not None:
            return override
        assert self.spec is not None
        return getattr(self.spec, name)

    def _resolved_env_seed(self) -> int:
        if self._env_seed is not None:
            return self._env_seed
        assert self.spec is not None
        return self.spec.resolved_env_seed

    def _wire_bus(self, defense: Defense) -> None:
        """Attach every tap the scenario's device exposes to the bus.

        One forwarder on the raw device publishes the host-op stream;
        GC, offload and retention-eviction taps publish their typed
        events.  The forensic :class:`TraceRecorder` (ground truth for
        the exact-recovery check) and any legacy ``observers`` become
        ordinary subscribers.  Everything here is passive: wiring the
        bus never changes simulated behaviour.
        """
        raw_device = getattr(defense.device, "ssd", defense.device)
        if defense.supports_forensics and hasattr(defense.device, "ssd"):
            self._recorder = TraceRecorder()
            recorder = self._recorder
            self.bus.subscribe(HostOpEvent, lambda event: recorder.on_host_op(event.op))
        for observer in self._observers:
            self.bus.subscribe(
                HostOpEvent,
                lambda event, observer=observer: observer.on_host_op(event.op),  # type: ignore[attr-defined]
            )
        raw_device.add_observer(_BusForwarder(self.bus))  # type: ignore[attr-defined]
        bus = self.bus

        # Like the host-op forwarder, every tap below skips event
        # construction when nobody is listening (evictions alone can
        # fire tens of thousands of times in a flooding scenario).
        def on_gc(result: Any, timestamp_us: int, forced: bool) -> None:
            if bus.has_subscribers(GCEvent):
                bus.publish(GCEvent.from_result(result, timestamp_us, forced))
            else:
                bus.count_discarded(GCEvent)

        def on_evict(record: Any, cause: str, timestamp_us: int) -> None:
            if bus.has_subscribers(RetentionEvictEvent):
                bus.publish(
                    RetentionEvictEvent(
                        timestamp_us=timestamp_us, lba=record.lpn, cause=cause
                    )
                )
            else:
                bus.count_discarded(RetentionEvictEvent)

        def on_offload(kind: str, count: int, wire_bytes: int, timestamp_us: int) -> None:
            if bus.has_subscribers(OffloadEvent):
                bus.publish(
                    OffloadEvent(
                        timestamp_us=timestamp_us,
                        kind=kind,
                        count=count,
                        wire_bytes=wire_bytes,
                    )
                )
            else:
                bus.count_discarded(OffloadEvent)

        if hasattr(raw_device, "gc_listeners"):
            raw_device.gc_listeners.append(on_gc)
        policy = getattr(defense, "policy", None)
        if policy is not None and hasattr(policy, "evict_listeners"):
            policy.evict_listeners.append(on_evict)
        rssd = getattr(defense, "rssd", None)
        if rssd is not None and hasattr(rssd, "offload"):
            rssd.offload.listeners.append(on_offload)

    def _publish_detection(
        self, defense: Defense, detected: bool, detected_at: Optional[int]
    ) -> None:
        """Publish one detection-fire event per detector report available."""
        events: List[DetectionEvent] = [
            DetectionEvent(
                detector=report.detector,
                detected=report.detected,
                timestamp_us=report.detection_time_us,
                trigger=report.trigger,
            )
            for report in defense.detection_reports()
        ]
        if not events:
            events.append(
                DetectionEvent(
                    detector=defense.name,
                    detected=detected,
                    timestamp_us=detected_at,
                    trigger="defense-flag" if detected else "",
                )
            )
        for event in events:
            self._detection_events.append(event)
            self.bus.publish(event)
