"""The stable public facade: one way to describe, run and observe a scenario.

``repro.api`` replaces the ad-hoc per-subsystem entry points (hand-built
``Defense`` objects, ``build_environment``, direct ``FleetRunner`` /
``run_roc`` construction) with three concepts:

* :class:`ScenarioSpec` -- a declarative, validated, JSON-serializable
  description of one device-under-attack scenario (defense, attack,
  workload, device geometry, sizes, seeds).  Specs diff, hash, and ship
  across process and machine boundaries.
* :class:`Session` -- the lifecycle object that executes one spec:
  ``provision() -> run() -> result``, with lazily-built views
  (``metrics()``, ``detection()``, ``forensics()``).
* :class:`EventBus` -- a typed publish/subscribe plane carrying
  :class:`HostOpEvent`, :class:`GCEvent`, :class:`DetectionEvent`,
  :class:`OffloadEvent` and :class:`RetentionEvictEvent`; detection
  capture, forensic trace recording and ROC labelling are ordinary
  subscribers.

Sweeps over many scenarios (:func:`run_campaign`, :func:`run_roc`, the
ablation studies) additionally accept the campaign persistence layer:
a content-addressed :class:`ResultCache` keyed by each cell's
``spec_hash`` plus the artifact schema version and the running code's
fingerprint, and a :class:`CheckpointJournal` for killed-sweep resume.
Hit/miss/invalidation accounting comes back as :class:`CacheStats` on
the returned artifact's ``cache_stats`` -- never inside the serialized
artifact, which stays byte-identical with or without the cache.

The campaign engine, the ROC pipeline, the fleet runner and the CLI all
consume this surface (``repro run --spec scenario.json`` is the
universal entry point), and everything listed in ``__all__`` below is
the documented, semver-promised API: additions may happen in any
release, removals or behaviour changes only with a deprecation cycle.

Quickstart::

    from repro.api import ScenarioSpec, Session

    spec = ScenarioSpec(defense="RSSD", attack="trimming-attack")
    session = Session(spec)
    result = session.run()
    print(result.recovery_fraction, session.detection().detected)
"""

from repro.analysis.reporting import format_table
from repro.api.compound import (
    COMPOUND_SPEC_VERSION,
    BackgroundStream,
    CompoundResult,
    CompoundScenarioSpec,
    run_compound,
)
from repro.api.environment import provision_environment
from repro.api.events import (
    DetectionEvent,
    Event,
    EventBus,
    GCEvent,
    HostOpEvent,
    OffloadEvent,
    RetentionEvictEvent,
    Subscription,
    record_events,
)
from repro.api.runs import run_campaign, run_fleet, run_roc
from repro.api.session import (
    DetectionView,
    MetricsView,
    Session,
    SessionResult,
    score_forensics,
    score_recovery,
)
from repro.api.spec import SPEC_VERSION, ScenarioSpec, SpecValidationError
from repro.campaign.cache import CacheStats, ResultCache, code_fingerprint
from repro.campaign.checkpoint import CheckpointError, CheckpointJournal
from repro.campaign.grid import CampaignGrid
from repro.campaign.results import CampaignArtifact
from repro.campaign.roc import RocArtifact
from repro.core.config import RSSDConfig
from repro.core.rssd import RSSD, build_rssd
from repro.sim import SimClock
from repro.workloads.fleet import FleetReport

__all__ = [
    # -- scenario description ------------------------------------------------
    "SPEC_VERSION",
    "ScenarioSpec",
    "SpecValidationError",
    # -- compound multi-tenant scenarios --------------------------------------
    "COMPOUND_SPEC_VERSION",
    "CompoundScenarioSpec",
    "BackgroundStream",
    "CompoundResult",
    "run_compound",
    # -- execution -----------------------------------------------------------
    "Session",
    "SessionResult",
    "MetricsView",
    "DetectionView",
    "provision_environment",
    "score_forensics",
    "score_recovery",
    # -- events ----------------------------------------------------------------
    "Event",
    "EventBus",
    "Subscription",
    "record_events",
    "HostOpEvent",
    "GCEvent",
    "DetectionEvent",
    "OffloadEvent",
    "RetentionEvictEvent",
    # -- many-scenario entry points -------------------------------------------
    "run_campaign",
    "run_roc",
    "run_fleet",
    "CampaignGrid",
    "CampaignArtifact",
    "RocArtifact",
    "FleetReport",
    # -- persistence: result cache and checkpoint/resume ------------------------
    "ResultCache",
    "CacheStats",
    "CheckpointJournal",
    "CheckpointError",
    "code_fingerprint",
    # -- device quickstart ------------------------------------------------------
    "RSSD",
    "RSSDConfig",
    "SimClock",
    "build_rssd",
    # -- rendering ---------------------------------------------------------------
    "format_table",
]
