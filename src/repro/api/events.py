"""Typed event bus: one subscribe API for every scenario signal.

Before the facade existed, each consumer bolted its own observer onto a
different layer: the ROC pipeline attached a
:class:`~repro.core.detection.DetectionTraceObserver` to the raw SSD,
the campaign engine attached a
:class:`~repro.forensics.pitr.TraceRecorder`, defenses watched their own
devices, and GC / offload / retention activity was invisible outside the
subsystem that produced it.  The :class:`EventBus` replaces those ad-hoc
capture paths with five typed event records and a single
``subscribe(event_type, handler)`` API; a
:class:`~repro.api.session.Session` wires the bus to every tap the
scenario's device exposes, and the old observers become ordinary
subscribers.

Events are frozen dataclasses, so subscribers can keep them, hash them
and compare them; publishing is synchronous and in device order (the
same ordering guarantee :class:`~repro.ssd.device.HostOp` observers had),
and handlers must be passive -- the bus is a measurement plane, never a
control plane, which is what keeps the golden artifacts bit-identical
whether or not anyone is listening.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Type, TypeVar, Union

from repro.ssd.device import HostOp
from repro.ssd.gc import GCResult


@dataclass(frozen=True)
class HostOpEvent:
    """One completed host command (read / write / trim / flush).

    Wraps the device-level :class:`~repro.ssd.device.HostOp` verbatim;
    ``timestamp_us`` mirrors ``op.timestamp_us`` so every event type can
    be sorted on the same field.
    """

    timestamp_us: int
    op: HostOp


@dataclass(frozen=True)
class GCEvent:
    """One garbage-collection pass on the scenario's device.

    ``forced`` distinguishes eager passes (trim on a commodity device,
    explicit ``run_gc_now``) from threshold-triggered background passes.
    """

    timestamp_us: int
    blocks_erased: int
    pages_relocated: int
    stale_pages_preserved: int
    stale_pages_released: int
    stalled: bool
    forced: bool

    @classmethod
    def from_result(cls, result: GCResult, timestamp_us: int, forced: bool) -> "GCEvent":
        """Build an event from a device-level :class:`~repro.ssd.gc.GCResult`."""
        return cls(
            timestamp_us=timestamp_us,
            blocks_erased=result.blocks_erased,
            pages_relocated=result.pages_relocated,
            stale_pages_preserved=result.stale_pages_preserved,
            stale_pages_released=result.stale_pages_released,
            stalled=result.stalled,
            forced=forced,
        )


@dataclass(frozen=True)
class DetectionEvent:
    """A detector verdict for the scenario.

    Published by the session once scoring runs: one event per detector
    report the defense exposes (the in-firmware window detector, the
    offloaded full-history detector, or the defense's single boolean).
    ``timestamp_us`` is ``None`` when the detector fired but cannot
    timestamp its trigger.
    """

    detector: str
    detected: bool
    timestamp_us: Optional[int]
    trigger: str = ""


@dataclass(frozen=True)
class OffloadEvent:
    """One capsule shipped over the NVMe-oE path to the remote tier.

    ``kind`` is ``"pages"`` for retained stale-page batches and
    ``"log-segment"`` for sealed operation-log segments; ``count`` is
    pages or log entries accordingly.
    """

    timestamp_us: int
    kind: str
    count: int
    wire_bytes: int


@dataclass(frozen=True)
class RetentionEvictEvent:
    """A retained pre-attack version was dropped before it could be used.

    Emitted by the selective retention policies of the hardware baseline
    defenses when capacity pressure (``"capacity"``) or GC reclaim
    pressure (``"gc-pressure"``) forces a release.  RSSD's retention
    manager never evicts (its invariant is zero data loss), which is
    precisely why subscribing to this event is interesting: a scenario
    that produces none on RSSD produces a stream of them on the
    bounded-buffer baselines.
    """

    timestamp_us: int
    lba: int
    cause: str


#: Every event record the bus can carry.
Event = Union[HostOpEvent, GCEvent, DetectionEvent, OffloadEvent, RetentionEvictEvent]

EventT = TypeVar(
    "EventT",
    HostOpEvent,
    GCEvent,
    DetectionEvent,
    OffloadEvent,
    RetentionEvictEvent,
)


@dataclass(frozen=True)
class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; pass to ``unsubscribe``."""

    event_type: type
    handler: Callable[[object], None]
    token: int


class EventBus:
    """Synchronous, typed publish/subscribe hub for scenario events.

    Handlers run in subscription order, immediately and on the
    publishing thread, and must not mutate simulation state.  The bus
    never buffers: a subscriber that wants history keeps its own (see
    :func:`record_events` for the trivial recorder).
    """

    def __init__(self) -> None:
        self._subscribers: Dict[type, List[Subscription]] = {}
        self._next_token = 0
        #: Events the bus saw so far, by event type name -- published to
        #: subscribers or counted via :meth:`count_discarded` when no
        #: one was listening (observability, tests).
        self.published_counts: Dict[str, int] = {}

    def subscribe(
        self, event_type: Type[EventT], handler: Callable[[EventT], None]
    ) -> Subscription:
        """Register ``handler`` for every future event of ``event_type``.

        Returns a :class:`Subscription` that :meth:`unsubscribe` accepts;
        subscribing the same handler twice delivers the event twice (the
        bus does not deduplicate).
        """
        if not callable(handler):
            raise TypeError("handler must be callable")
        subscription = Subscription(
            event_type=event_type, handler=handler, token=self._next_token
        )
        self._next_token += 1
        self._subscribers.setdefault(event_type, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a subscription; unknown subscriptions are ignored."""
        handlers = self._subscribers.get(subscription.event_type, [])
        if subscription in handlers:
            handlers.remove(subscription)

    def publish(self, event: Event) -> None:
        """Deliver ``event`` to every subscriber of its exact type, in order."""
        event_type = type(event)
        name = event_type.__name__
        self.published_counts[name] = self.published_counts.get(name, 0) + 1
        for subscription in tuple(self._subscribers.get(event_type, ())):
            subscription.handler(event)

    def subscriber_count(self, event_type: Optional[type] = None) -> int:
        """Active subscriptions for one event type, or across all types."""
        if event_type is not None:
            return len(self._subscribers.get(event_type, ()))
        return sum(len(handlers) for handlers in self._subscribers.values())

    def has_subscribers(self, event_type: type) -> bool:
        """Fast path for hot publishers: anyone listening for this type?

        High-rate taps (the per-host-op forwarder) check this before
        constructing an event, so a session nobody subscribed to pays no
        allocation on the I/O hot path; :meth:`count_discarded` keeps
        ``published_counts`` exact either way.
        """
        return bool(self._subscribers.get(event_type))

    def count_discarded(self, event_type: type) -> None:
        """Record an event that was observed but not constructed.

        Used by hot publishers together with :meth:`has_subscribers`:
        the event still shows up in ``published_counts`` (the counts
        mean *events the bus saw*, delivered or not), without the cost
        of building a record nobody would receive.
        """
        name = event_type.__name__
        self.published_counts[name] = self.published_counts.get(name, 0) + 1


def record_events(
    bus: EventBus, *event_types: type
) -> Tuple[List[Event], List[Subscription]]:
    """Subscribe an appending recorder for ``event_types`` (all five if empty).

    Returns the shared (initially empty) event list plus the created
    subscriptions, so callers can ``unsubscribe`` when done::

        events, subs = record_events(session.bus, GCEvent, OffloadEvent)
        session.run()
        gc_passes = [e for e in events if isinstance(e, GCEvent)]
    """
    types: Tuple[type, ...] = event_types or (
        HostOpEvent,
        GCEvent,
        DetectionEvent,
        OffloadEvent,
        RetentionEvictEvent,
    )
    events: List[Event] = []
    subscriptions = [bus.subscribe(event_type, events.append) for event_type in types]
    return events, subscriptions
