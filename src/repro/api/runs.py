"""Grid- and fleet-level entry points of the facade.

One scenario is a :class:`~repro.api.session.Session`; these functions
are the supported way to run *many* -- a campaign grid, a
detection-quality (ROC) sweep, or a trace replay against a whole fleet
of devices.  All three ride the same machinery underneath (cells become
``ScenarioSpec`` + ``Session``, parallelism goes through the shared
:class:`~repro.campaign.runner.ExperimentRunner`), which is exactly the
point of the facade: one path, many consumers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.campaign.engine import run_campaign as run_campaign  # noqa: F401  (re-export)
from repro.campaign.grid import CampaignGrid, CellSpec
from repro.campaign.roc import RocArtifact, _run_roc
from repro.campaign.runner import ExperimentRunner
from repro.workloads.fleet import FleetFactory, FleetReport, FleetRunner
from repro.workloads.records import TraceRecord

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.campaign.cache import ResultCache
    from repro.campaign.checkpoint import CheckpointJournal


def run_roc(
    grid: CampaignGrid,
    backend: str = "sequential",
    jobs: int = 0,
    filters: Optional[Sequence[str]] = None,
    runner: Optional[ExperimentRunner] = None,
    specs: Optional[List[CellSpec]] = None,
    cache: Optional["ResultCache"] = None,
    journal: Optional["CheckpointJournal"] = None,
    resume: bool = False,
    after_cell: Optional[Callable] = None,
) -> RocArtifact:
    """Execute a grid's cells with detection-quality (ROC) capture.

    The same contract as :func:`repro.api.run_campaign`: every cell runs
    as a ``ScenarioSpec`` + ``Session`` with the labelled-op capture
    subscribed to the session bus, ``specs`` overrides the grid
    expansion, results assemble order-independently, and any backend
    yields a bit-identical artifact.  ``cache`` / ``journal`` /
    ``resume`` / ``after_cell`` opt into the persistence layer exactly
    as on :func:`repro.api.run_campaign` (hit/miss accounting lands on
    the artifact's ``cache_stats``).
    """
    return _run_roc(
        grid,
        backend=backend,
        jobs=jobs,
        filters=filters,
        runner=runner,
        specs=specs,
        cache=cache,
        journal=journal,
        resume=resume,
        after_cell=after_cell,
    )


def run_fleet(
    records: Sequence[TraceRecord],
    *,
    factories: Optional[Dict[str, FleetFactory]] = None,
    mode: str = "mirror",
    parallel: bool = False,
    batched: bool = True,
    max_batch_pages: int = 64,
    honor_timestamps: bool = False,
) -> FleetReport:
    """Replay a block trace against a fleet of devices and compare them.

    ``mode="mirror"`` replays the full trace on every device
    (apples-to-apples comparison); ``mode="shard"`` splits it round-robin
    across the fleet (multi-tenant pool).  ``factories`` defaults to
    RSSD next to the hardware baselines
    (:func:`repro.workloads.fleet.default_fleet_factories`).  This is
    the supported replacement for constructing
    :class:`~repro.workloads.fleet.FleetRunner` directly.
    """
    fleet = FleetRunner._create(
        factories=factories,
        batched=batched,
        max_batch_pages=max_batch_pages,
        honor_timestamps=honor_timestamps,
    )
    if mode == "shard":
        return fleet.run_sharded(records, parallel=parallel)
    if mode != "mirror":
        raise ValueError(f"unknown fleet mode {mode!r}; expected 'mirror' or 'shard'")
    return fleet.run_mirrored(records, parallel=parallel)
