"""A2 — ablation of the enhanced trim command.

Design choice under test: instead of disabling trim (which breaks
TRIM-dependent software) or keeping commodity semantics (which the
trimming attack exploits), RSSD remaps and retains trimmed data.
"""

from repro.ablation import run_trim_ablation
from repro.analysis.reporting import format_table
from repro.bench import scaled


def test_trim_handling_modes(once):
    rows = once(run_trim_ablation, victim_files=scaled(16, 8))
    table = format_table(
        ["trim mode", "pages trimmed", "recovered fraction", "trim rejected"],
        [[row.mode, row.pages_trimmed, row.recovered_fraction, row.trim_rejected] for row in rows],
    )
    print("\n[A2] Enhanced trim ablation (trimming attack outcome)\n" + table)

    by_mode = {row.mode: row for row in rows}

    # Enhanced trim: the command is honoured AND the data survives.
    assert by_mode["enhanced"].pages_trimmed > 0
    assert not by_mode["enhanced"].trim_rejected
    assert by_mode["enhanced"].recovered_fraction == 1.0

    # Commodity semantics: the trimming attack destroys the originals.
    assert by_mode["naive"].recovered_fraction < 0.5

    # Disabling trim protects data only by rejecting the command outright.
    assert by_mode["disabled"].trim_rejected
