"""A1 — ablation of the offload path: compression ratio and bandwidth demand.

Design choice under test: RSSD compresses (and encrypts) retained pages
before shipping them over NVMe-oE, which is what keeps a 1 GbE link far
ahead of the stale-data production rate of real volumes.
"""

from repro.ablation import run_offload_ablation
from repro.analysis.reporting import format_table
from repro.analysis.retention import RetentionScenario, lookup_volume, stale_gb_per_day
from repro.bench import scaled


def test_offload_compression_and_bandwidth(once):
    rows = once(
        run_offload_ablation,
        volumes=["hm", "src", "email", "usr"],
        duration_s=scaled(0.1, 0.05),
    )
    table = format_table(
        ["volume", "pages offloaded", "raw MB", "compressed MB", "ratio", "wire MB"],
        [
            [row.volume, row.pages_offloaded, row.raw_mb, row.compressed_mb, row.compression_ratio, row.wire_mb]
            for row in rows
        ],
    )
    print("\n[A1] Offload path: compression + bandwidth\n" + table)

    assert len(rows) == 4
    for row in rows:
        assert row.pages_offloaded > 0
        assert 0.3 < row.compression_ratio < 0.9
        assert row.compressed_mb <= row.raw_mb

    # The GbE link has orders of magnitude more daily capacity than any
    # volume's compressed stale production -- the reason retention time is
    # bounded by the remote budget, not the network.
    scenario = RetentionScenario()
    for row in rows:
        profile = lookup_volume(row.volume)
        produced = stale_gb_per_day(profile, scenario) * profile.mean_compress_ratio
        assert produced < scenario.link_capacity_gb_per_day / 100.0
