"""P3 — post-attack data recovery.

The paper reports fast, zero-data-loss recovery after attacks; this
benchmark replays every attack model against RSSD, runs recovery and
verifies every victim page and file.
"""

from repro.analysis.experiments import run_recovery_experiment
from repro.analysis.reporting import format_table
from repro.bench import scaled


def test_recovery_after_every_attack(once):
    rows = once(run_recovery_experiment, victim_files=scaled(24, 12))
    table = format_table(
        ["attack", "victim pages", "restored", "unrecoverable", "recovery (s, simulated)", "files ok"],
        [
            [
                row.attack,
                row.victim_pages,
                row.pages_restored,
                row.pages_unrecoverable,
                row.recovery_seconds,
                f"{row.files_fully_recovered}/{row.files_total}",
            ]
            for row in rows
        ],
    )
    print("\n[P3] Data recovery after attacks\n" + table)

    assert {row.attack for row in rows} == {
        "classic",
        "gc-attack",
        "timing-attack",
        "trimming-attack",
    }
    for row in rows:
        # Zero data loss: every affected page and every file comes back.
        assert row.pages_unrecoverable == 0, row.attack
        assert row.recovered_fraction == 1.0, row.attack
        assert row.files_fully_recovered == row.files_total, row.attack
        # Recovery is fast: well under a minute of simulated time for this
        # working set (the paper reports minutes for full-disk recoveries).
        assert row.recovery_seconds < 60.0, row.attack
