"""Measure replay throughput and maintain the BENCH_replay.json trajectory.

The repository keeps machine-readable performance baselines in
versioned ``BENCH_*.json`` files at the root.  Each file records, per
mode (``full`` / ``smoke``), the latest measurement plus a bounded
history, each entry stamped with the git SHA and date -- a perf
trajectory that survives refactors and lets CI catch regressions.

Raw ops/s numbers are machine-dependent, so the regression gate
compares the *speedup* of the batched path over the per-op loop
measured in the same process on the same machine; that ratio is stable
across hosts while still collapsing if the batched engine regresses.

Usage::

    PYTHONPATH=src python benchmarks/bench_emit.py            # update baseline
    PYTHONPATH=src python benchmarks/bench_emit.py --check    # CI regression gate
    PYTHONPATH=src python benchmarks/bench_emit.py --output out/BENCH_replay.json

``--check`` compares the fresh measurement against the committed
baseline *before* writing and exits non-zero if the speedup dropped by
more than ``--max-regression`` (default 20%).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
from typing import Dict, Optional

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(HERE)
if HERE not in sys.path:
    sys.path.insert(0, HERE)

SCHEMA_VERSION = 1
HISTORY_LIMIT = 20
DEFAULT_MAX_REGRESSION = 0.20


def mode_name() -> str:
    """Current measurement mode, matching the suite's smoke scaling."""
    from repro.bench import SMOKE

    return "smoke" if SMOKE else "full"


def git_sha() -> str:
    """Short SHA of HEAD, or ``unknown`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def environment_stamp() -> Dict[str, str]:
    """Version stamp attached to every emitted entry."""
    return {
        "git_sha": git_sha(),
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
    }


def measure_replay(repeats: int = 3) -> Dict[str, object]:
    """Run the replay benchmark harness and return one trajectory entry.

    Reuses the exact device, trace and timing helpers of
    ``benchmarks/test_replay_throughput.py`` so the emitted numbers are
    the numbers the test gate sees.
    """
    import test_replay_throughput as bench
    from repro.workloads.replay import BatchTraceReplayer, TraceReplayer

    trace = bench.build_trace()
    batched_s, batched_result = bench.timed_replay(
        lambda: BatchTraceReplayer(
            bench.build_device(),
            honor_timestamps=False,
            max_batch_pages=bench.MAX_BATCH_PAGES,
        ),
        trace,
        repeats=repeats,
    )
    per_op_s, _ = bench.timed_replay(
        lambda: TraceReplayer(bench.build_device(), honor_timestamps=False),
        trace,
        repeats=max(1, repeats - 1),
    )
    entry: Dict[str, object] = {
        "trace_ops": len(trace),
        "wall_s_batched": round(batched_s, 4),
        "wall_s_per_op": round(per_op_s, 4),
        "ops_per_s_batched": round(len(trace) / batched_s, 1),
        "ops_per_s_per_op": round(len(trace) / per_op_s, 1),
        "speedup": round((len(trace) / batched_s) / (len(trace) / per_op_s), 2),
        "coalescing_factor": round(batched_result.coalescing_factor, 1),
    }
    entry.update(environment_stamp())
    return entry


def load_bench_file(path: str) -> Optional[Dict[str, object]]:
    """Load an existing BENCH_*.json, or ``None`` if absent/unreadable."""
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def update_bench_file(path: str, mode: str, entry: Dict[str, object]) -> Dict[str, object]:
    """Merge ``entry`` into the trajectory file at ``path`` and write it."""
    payload = load_bench_file(path)
    if payload is None or payload.get("schema") != SCHEMA_VERSION:
        payload = {
            "schema": SCHEMA_VERSION,
            "benchmark": "replay_throughput",
            "modes": {},
            "history": {},
        }
    payload.setdefault("modes", {})[mode] = entry
    history = payload.setdefault("history", {}).setdefault(mode, [])
    history.append(entry)
    del history[:-HISTORY_LIMIT]
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def check_regression(
    baseline: Optional[Dict[str, object]],
    mode: str,
    entry: Dict[str, object],
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> Optional[str]:
    """Return an error message if ``entry`` regressed past the baseline."""
    if baseline is None:
        return None
    recorded = baseline.get("modes", {}).get(mode)
    if not recorded or "speedup" not in recorded:
        return None
    floor = float(recorded["speedup"]) * (1.0 - max_regression)
    measured = float(entry["speedup"])
    if measured < floor:
        return (
            f"batched replay speedup regressed: measured {measured:.2f}x, "
            f"baseline {float(recorded['speedup']):.2f}x "
            f"(floor {floor:.2f}x at {max_regression:.0%} tolerance)"
        )
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_replay.json"),
        help="trajectory file to update (default: repo root BENCH_replay.json)",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "BENCH_replay.json"),
        help="committed baseline compared by --check",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) if throughput regressed past --max-regression",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="allowed fractional speedup drop before --check fails (default 0.20)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of repeats per path (default 3)"
    )
    args = parser.parse_args(argv)

    mode = mode_name()
    entry = measure_replay(repeats=args.repeats)
    print(
        f"[bench_emit] mode={mode} trace_ops={entry['trace_ops']:,} "
        f"batched={entry['ops_per_s_batched']:,.0f} ops/s "
        f"per-op={entry['ops_per_s_per_op']:,.0f} ops/s "
        f"speedup={entry['speedup']:.2f}x"
    )

    error = None
    if args.check:
        error = check_regression(
            load_bench_file(args.baseline), mode, entry, args.max_regression
        )

    update_bench_file(args.output, mode, entry)
    print(f"[bench_emit] wrote {args.output}")

    if error is not None:
        print(f"[bench_emit] FAIL: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
