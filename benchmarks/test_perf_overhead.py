"""P1 — storage performance overhead of RSSD versus an unmodified SSD.

The paper reports < 1% impact on local storage performance; this
benchmark replays fio-style jobs against both devices and compares
host-visible latencies.
"""

from repro.analysis.experiments import run_performance_overhead
from repro.analysis.reporting import format_table
from repro.bench import scaled


def test_performance_overhead(once):
    rows = once(run_performance_overhead, duration_s=scaled(0.5, 0.25))
    table = format_table(
        ["job", "base write us", "rssd write us", "write ovh %", "base read us", "rssd read us", "read ovh %"],
        [
            [
                row.job,
                row.baseline_write_latency_us,
                row.rssd_write_latency_us,
                row.write_overhead * 100.0,
                row.baseline_read_latency_us,
                row.rssd_read_latency_us,
                row.read_overhead * 100.0,
            ]
            for row in rows
        ],
    )
    print("\n[P1] Local storage performance overhead\n" + table)

    assert len(rows) == 5
    for row in rows:
        assert row.write_overhead < 0.01, row.job
        assert row.read_overhead < 0.01, row.job
