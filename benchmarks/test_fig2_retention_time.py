"""F2 — Figure 2: data retention time per traced volume.

Regenerates the retention-time comparison between LocalSSD,
LocalSSD+Compression and RSSD across the MSR/FIU volumes, using the
analytic model (validated against simulated replays in the test suite).
"""

from repro.analysis.experiments import run_retention_experiment
from repro.analysis.reporting import format_table


def test_fig2_retention_time(once):
    # Analytic model over the 12 traced volumes: cheap enough that smoke
    # mode (REPRO_SMOKE, see benchmarks/conftest.py) runs it full-size.
    rows = once(run_retention_experiment)
    table = format_table(
        ["volume", "LocalSSD (days)", "LocalSSD+Compr (days)", "RSSD (days)"],
        [
            [row.volume, row.local_days, row.local_compressed_days, row.rssd_days]
            for row in rows
        ],
    )
    print("\n[Figure 2] Data retention time (days)\n" + table)

    # Shape of the paper's figure: RSSD retains for > 200 days on every
    # volume, far beyond what local spare capacity allows, and in-place
    # compression only buys a modest extension.
    assert len(rows) == 12
    for row in rows:
        assert row.rssd_days >= 200.0, row.volume
        assert row.local_days < 100.0, row.volume
        assert row.local_days <= row.local_compressed_days <= row.rssd_days
        assert row.rssd_advantage > 2.0
