"""P2 — device lifetime impact (write amplification and erase counts).

The paper reports minimal impact on device lifetime; this benchmark
replays trace-profile workloads against both devices and compares wear.
"""

from repro.analysis.experiments import run_lifetime_experiment
from repro.analysis.reporting import format_table
from repro.bench import scaled


def test_lifetime_impact(once):
    rows = once(
        run_lifetime_experiment,
        volumes=["hm", "src", "usr"],
        duration_s=scaled(0.1, 0.05),
    )
    table = format_table(
        ["volume", "base WAF", "rssd WAF", "WAF ovh %", "base erases", "rssd erases", "erase ovh %"],
        [
            [
                row.volume,
                row.baseline_waf,
                row.rssd_waf,
                row.waf_overhead * 100.0,
                row.baseline_erases,
                row.rssd_erases,
                row.erase_overhead * 100.0,
            ]
            for row in rows
        ],
    )
    print("\n[P2] Device lifetime impact\n" + table)

    assert len(rows) == 3
    for row in rows:
        assert row.baseline_waf >= 1.0
        assert row.rssd_waf >= 1.0
        # Minimal lifetime impact: single-digit percent extra wear.
        assert row.waf_overhead < 0.10, row.volume
        assert row.erase_overhead < 0.15, row.volume
