"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index) and prints the rows it produced.  Run with
``pytest benchmarks/ --benchmark-only -s`` to see the tables inline.

Two cross-cutting concerns are centralised here:

* **Smoke scaling.**  All workload size knobs go through
  :mod:`repro.bench` (``SMOKE`` / ``scaled``), so ``REPRO_SMOKE=1``
  shrinks the whole suite consistently -- no benchmark file reads the
  environment on its own.
* **Perf-trajectory emission.**  Benchmarks that measure throughput
  record their numbers through the :func:`bench_record` fixture; when
  ``REPRO_BENCH_EMIT`` is set, the session-finish hook hands the
  recorded entries to :mod:`bench_emit`, which appends them to the
  versioned ``BENCH_<name>.json`` files at the repository root.
"""

import os
import sys

import pytest

from repro.bench import SMOKE, scaled  # noqa: F401  (re-exported for benchmarks)

#: Results recorded by benchmark tests this session: name -> entry dict.
_RECORDED = {}


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiments are macro-benchmarks (whole simulated scenarios), so a
    single timed round is representative and keeps the suite fast.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner


@pytest.fixture
def smoke():
    """Whether the suite is running in reduced smoke mode."""
    return SMOKE


@pytest.fixture
def bench_record():
    """Record a benchmark's measured numbers for BENCH_*.json emission.

    ``bench_record("replay", {...})`` stages an entry; nothing is
    written unless ``REPRO_BENCH_EMIT`` is set when the session ends
    (``1`` writes next to the repository root, any other value is used
    as the output directory).
    """

    def recorder(name, entry):
        _RECORDED[name] = dict(entry)

    return recorder


def pytest_sessionfinish(session, exitstatus):
    """Emit recorded benchmark entries into versioned BENCH_*.json files."""
    target = os.environ.get("REPRO_BENCH_EMIT", "")
    if not _RECORDED or target in ("", "0"):
        return
    here = os.path.dirname(os.path.abspath(__file__))
    if here not in sys.path:
        sys.path.insert(0, here)
    import bench_emit

    out_dir = os.path.dirname(here) if target == "1" else target
    for name, entry in _RECORDED.items():
        path = os.path.join(out_dir, f"BENCH_{name}.json")
        stamped = dict(entry)
        stamped.update(bench_emit.environment_stamp())
        bench_emit.update_bench_file(path, bench_emit.mode_name(), stamped)
