"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index) and prints the rows it produced.  Run with
``pytest benchmarks/ --benchmark-only -s`` to see the tables inline.
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiments are macro-benchmarks (whole simulated scenarios), so a
    single timed round is representative and keeps the suite fast.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner
