"""A3 — ablation of detection placement: in-device window vs offloaded analysis.

Design choice under test: RSSD offloads detection/analysis to remote
servers over the full operation history, rather than relying on the
short-horizon detectors that fit inside SSD firmware.
"""

from repro.ablation import run_detection_ablation
from repro.analysis.reporting import format_table


def test_local_versus_offloaded_detection(once):
    rows = once(run_detection_ablation)
    table = format_table(
        ["attack", "local detector", "remote detector", "attacker identified"],
        [[row.attack, row.local_detected, row.remote_detected, row.remote_identified_attacker] for row in rows],
    )
    print("\n[A3] Detection placement ablation\n" + table)

    by_attack = {row.attack: row for row in rows}

    # The offloaded detector catches every attack and attributes it.
    for row in rows:
        assert row.remote_detected, row.attack
        assert row.remote_identified_attacker, row.attack

    # The in-device window detector catches fast bulk encryption but is
    # evaded by the paced timing attack -- the motivation for offloading.
    assert by_attack["classic"].local_detected
    assert not by_attack["timing-attack"].local_detected
