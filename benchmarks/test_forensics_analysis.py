"""P4 — trusted post-attack analysis (evidence chain construction).

The paper reports that RSSD reconstructs the original sequence of I/O
events leading to an attack in a short time; this benchmark mixes an
attack into background workloads of increasing size and measures the
evidence-chain reconstruction.
"""

from repro.analysis.experiments import run_forensics_experiment
from repro.analysis.reporting import format_table
from repro.bench import scaled


def test_evidence_chain_reconstruction(once):
    background_ops = scaled([200, 1_000, 4_000], [200, 1_000])
    rows = once(run_forensics_experiment, background_ops_list=background_ops)
    table = format_table(
        ["background ops", "log entries", "chain verified", "attacker found", "reconstruction (s, simulated)", "remote segments"],
        [
            [
                row.background_ops,
                row.log_entries,
                row.chain_verified,
                row.attacker_identified,
                row.reconstruction_seconds,
                row.offloaded_segments,
            ]
            for row in rows
        ],
    )
    print("\n[P4] Evidence-chain construction\n" + table)

    assert len(rows) == len(background_ops)
    for row in rows:
        assert row.chain_verified
        assert row.attacker_identified
        assert row.reconstruction_seconds < 10.0
    # Reconstruction cost scales with the amount of logged history.
    assert rows[0].reconstruction_seconds <= rows[-1].reconstruction_seconds
    assert rows[0].log_entries < rows[-1].log_entries
