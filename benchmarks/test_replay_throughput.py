"""Replay throughput: the batched I/O engine versus the per-op loop.

Replays the same burst-structured synthetic trace against two identical
RSSD devices -- once through the per-op loop (one Python call per trace
record) and once through the batched path (contiguous same-op runs
coalesced into vectorized ``write_batch`` / ``read_batch`` /
``trim_range`` commands) -- and compares wall-clock throughput.  The
batched path must be at least ``MIN_SPEEDUP`` times faster; this is the
change that makes fleet-scale trace replay feasible in Python.

Set ``REPRO_SMOKE=1`` (as CI does) to run a shorter trace with a
relaxed threshold suited to noisy shared runners.
"""

import time

from repro.bench import scaled
from repro.core.config import RSSDConfig
from repro.core.rssd import RSSD
from repro.ssd.geometry import SSDGeometry
from repro.workloads.replay import BatchTraceReplayer, TraceReplayer
from repro.workloads.synthetic import BurstyWorkload

TRACE_OPS = scaled(100_000, 10_000)
MIN_SPEEDUP = scaled(5.0, 2.0)
MAX_BATCH_PAGES = 256

#: Large enough that the 100k-op ingest mostly lands on fresh pages, the
#: way a replay node streams a trace onto a provisioned device.
GEOMETRY = SSDGeometry(
    channels=4, chips_per_channel=2, blocks_per_chip=256, pages_per_block=64
)


def build_device() -> RSSD:
    return RSSD(RSSDConfig(geometry=GEOMETRY))


def build_trace():
    workload = BurstyWorkload(
        capacity_pages=build_device().capacity_pages,
        write_fraction=0.25,
        read_fraction=0.70,
        burst_records=(64, 256),
        seed=11,
    )
    return workload.generate(TRACE_OPS)


def timed_replay(replayer_factory, trace, repeats):
    """Best-of-``repeats`` wall-clock replay time on fresh devices."""
    best = None
    result = None
    for _ in range(repeats):
        replayer = replayer_factory()
        started = time.perf_counter()
        result = replayer.replay(trace)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def test_batched_replay_is_5x_faster(benchmark, bench_record):
    trace = build_trace()

    batched_s, batched_result = timed_replay(
        lambda: BatchTraceReplayer(
            build_device(), honor_timestamps=False, max_batch_pages=MAX_BATCH_PAGES
        ),
        trace,
        repeats=4,
    )
    per_op_s, per_op_result = benchmark.pedantic(
        lambda: timed_replay(
            lambda: TraceReplayer(build_device(), honor_timestamps=False),
            trace,
            repeats=2,
        ),
        rounds=1,
        iterations=1,
    )

    per_op_ops = len(trace) / per_op_s
    batched_ops = len(trace) / batched_s
    speedup = batched_ops / per_op_ops
    bench_record(
        "replay",
        {
            "trace_ops": len(trace),
            "wall_s_batched": round(batched_s, 4),
            "wall_s_per_op": round(per_op_s, 4),
            "ops_per_s_batched": round(batched_ops, 1),
            "ops_per_s_per_op": round(per_op_ops, 1),
            "speedup": round(speedup, 2),
            "coalescing_factor": round(batched_result.coalescing_factor, 1),
        },
    )
    print(
        f"\n[P5] Trace replay throughput ({len(trace):,} ops)\n"
        f"  per-op loop : {per_op_s:6.2f}s  {per_op_ops:10,.0f} ops/s\n"
        f"  batched path: {batched_s:6.2f}s  {batched_ops:10,.0f} ops/s "
        f"(coalescing {batched_result.coalescing_factor:.1f} records/command)\n"
        f"  speedup     : {speedup:.2f}x (required >= {MIN_SPEEDUP:.1f}x)"
    )

    # Both paths replayed the same logical traffic.
    assert batched_result.records_replayed == per_op_result.records_replayed == len(trace)
    assert batched_result.pages_written == per_op_result.pages_written
    assert batched_result.pages_read == per_op_result.pages_read
    assert batched_result.pages_trimmed == per_op_result.pages_trimmed
    # And the batched engine is decisively faster.
    assert batched_result.coalescing_factor > 10.0
    assert speedup >= MIN_SPEEDUP, (
        f"batched replay only {speedup:.2f}x faster than the per-op loop"
    )
