"""T1 — Table 1: comparison with state-of-the-art defenses.

Regenerates the paper's capability matrix by replaying the classic, GC,
timing and trimming attacks against every baseline defense and RSSD on
the same SSD substrate, then scoring how much victim data each defense
can still produce.
"""

from repro.analysis.experiments import run_capability_matrix
from repro.bench import scaled
from repro.defenses.matrix import CapabilityMatrix


def test_table1_capability_matrix(once):
    rows = once(run_capability_matrix, victim_files=scaled(24, 12))
    table = CapabilityMatrix.format_table(rows)
    print("\n[Table 1] Defense capability matrix (measured)\n" + table)

    by_name = {row.defense: row for row in rows}

    # RSSD: defends all three new attacks, full recovery, forensics support.
    rssd = by_name["RSSD"]
    for attack in ("gc-attack", "timing-attack", "trimming-attack"):
        assert rssd.cells[attack].defended, attack
    assert rssd.recovery_symbol == "●"
    assert rssd.supports_forensics

    # Hardware retention baselines survive the GC attack but not timing/trim.
    for name in ("FlashGuard", "TimeSSD"):
        row = by_name[name]
        assert row.cells["gc-attack"].defended
        assert not row.cells["timing-attack"].defended
        assert not row.cells["trimming-attack"].defended

    # Detection-centric and software baselines fail the new attacks.
    for name in ("Unveil", "CryptoDrop", "ShieldFS", "JFS", "SSDInsider", "RBlocker"):
        row = by_name[name]
        for attack in ("gc-attack", "timing-attack", "trimming-attack"):
            assert not row.cells[attack].defended, (name, attack)

    # CloudBackup only helps against the stealthy timing attack, partially.
    backup = by_name["CloudBackup"]
    assert backup.cells["timing-attack"].recovery_fraction >= 0.5
    assert backup.cells["gc-attack"].recovery_fraction < 0.05

    # Only RSSD provides trusted post-attack analysis.
    assert [row.defense for row in rows if row.supports_forensics] == ["RSSD"]
