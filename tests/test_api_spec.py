"""ScenarioSpec: validation, serialization, hashing, campaign interop."""

from __future__ import annotations

import json

import pytest

from repro.api import SPEC_VERSION, ScenarioSpec
from repro.campaign.grid import CampaignGrid
from repro.campaign.seeding import derive_seed


class TestValidation:
    def test_default_spec_is_valid(self):
        spec = ScenarioSpec()
        assert spec.scenario_key == "RSSD/classic/office-edit/tiny"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("defense", "NotADefense"),
            ("attack", "not-an-attack"),
            ("workload", "not-a-workload"),
            ("device", "mega"),
        ],
    )
    def test_unknown_registry_names_fail_fast(self, field, value):
        with pytest.raises(KeyError) as excinfo:
            ScenarioSpec(**{field: value})
        # The error names the full known list, so it is actionable.
        assert value in str(excinfo.value)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("victim_files", 0),
            ("victim_files", -3),
            ("file_size_bytes", 0),
            ("user_activity_hours", -1.0),
            ("recent_edit_fraction", 1.5),
            ("recent_edit_fraction", -0.1),
        ],
    )
    def test_bad_scenario_numbers_fail_fast(self, field, value):
        with pytest.raises(ValueError):
            ScenarioSpec(**{field: value})

    @pytest.mark.parametrize(
        "field,value",
        [
            ("victim_files", float("nan")),
            ("victim_files", 2.5),
            ("victim_files", True),
            ("victim_files", "8"),
            ("file_size_bytes", float("nan")),
            ("file_size_bytes", -4096),
            ("file_size_bytes", True),
            ("user_activity_hours", float("nan")),
            ("user_activity_hours", float("inf")),
            ("user_activity_hours", "2.0"),
            ("user_activity_hours", True),
            ("recent_edit_fraction", float("nan")),
            ("recent_edit_fraction", float("-inf")),
            ("recent_edit_fraction", None),
        ],
    )
    def test_non_finite_and_wrong_type_numbers_fail_fast(self, field, value):
        """NaN slipped through plain comparisons; the structured check
        rejects non-finite, non-numeric and bool values at construction."""
        from repro.api import SpecValidationError

        with pytest.raises(SpecValidationError) as excinfo:
            ScenarioSpec(**{field: value})
        assert excinfo.value.field == field
        assert field in str(excinfo.value)


class TestSeeds:
    def test_seeds_derive_the_campaign_sha256_way(self):
        spec = ScenarioSpec(seed=71)
        key = spec.scenario_key
        assert spec.resolved_env_seed == derive_seed(71, key, "env")
        assert spec.resolved_workload_seed == derive_seed(71, key, "workload")
        assert spec.resolved_attack_seed == derive_seed(71, key, "attack")

    def test_explicit_seeds_override_derivation(self):
        spec = ScenarioSpec(env_seed=1, workload_seed=2, attack_seed=3)
        assert (spec.resolved_env_seed, spec.resolved_workload_seed,
                spec.resolved_attack_seed) == (1, 2, 3)

    def test_resolve_seeds_materializes_every_stream(self):
        resolved = ScenarioSpec(seed=5).resolve_seeds()
        assert resolved.env_seed == resolved.resolved_env_seed
        assert resolved.workload_seed is not None
        assert resolved.attack_seed is not None


class TestSerialization:
    def test_json_round_trip_is_bit_identical(self):
        spec = ScenarioSpec(defense="FlashGuard", attack="gc-attack", seed=9)
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.to_json() == spec.to_json()

    def test_json_is_canonical_and_versioned(self):
        # A spec with no ablation serializes exactly as version 1 did, so
        # pre-existing spec files and hashes stay valid.
        payload = json.loads(ScenarioSpec().to_json())
        assert payload["version"] == 1
        assert "ablation" not in payload
        assert list(payload) == sorted(payload)
        # Only the new optional field opts a spec into the current version.
        ablated = json.loads(ScenarioSpec(ablation=("enhanced-trim",)).to_json())
        assert ablated["version"] == SPEC_VERSION
        assert ablated["ablation"] == ["enhanced-trim"]
        assert list(ablated) == sorted(ablated)

    def test_newer_versions_are_refused(self):
        payload = ScenarioSpec().to_dict()
        payload["version"] = SPEC_VERSION + 1
        with pytest.raises(ValueError, match="newer than supported"):
            ScenarioSpec.from_dict(payload)

    def test_unknown_fields_are_refused(self):
        payload = ScenarioSpec().to_dict()
        payload["gpu_count"] = 8
        with pytest.raises(ValueError, match="unknown scenario spec fields"):
            ScenarioSpec.from_dict(payload)

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        spec = ScenarioSpec(attack="timing-attack")
        spec.save(str(path))
        assert ScenarioSpec.load(str(path)).spec_hash() == spec.spec_hash()


class TestHashing:
    #: Pinned hash of the all-defaults spec.  If this changes, every
    #: shipped spec identity changes with it -- bump SPEC_VERSION and say
    #: why in the changelog.
    DEFAULT_SPEC_HASH = (
        "c440c3931bfb43fb5c3a3e98203c03a2c1d3d5d7b201bb60c70982330d768f88"
    )

    def test_hash_is_stable_across_construction_paths(self):
        assert ScenarioSpec().spec_hash() == self.DEFAULT_SPEC_HASH
        assert ScenarioSpec(seed=23).spec_hash() == self.DEFAULT_SPEC_HASH

    def test_derived_and_resolved_specs_hash_identically(self):
        spec = ScenarioSpec(seed=42)
        assert spec.spec_hash() == spec.resolve_seeds().spec_hash()

    def test_any_field_change_changes_the_hash(self):
        base = ScenarioSpec().spec_hash()
        assert ScenarioSpec(attack="gc-attack").spec_hash() != base
        assert ScenarioSpec(victim_files=25).spec_hash() != base
        assert ScenarioSpec(seed=24).spec_hash() != base

    def test_diff_is_field_precise(self):
        a = ScenarioSpec()
        b = ScenarioSpec(defense="FlashGuard", victim_files=12)
        differences = b.diff(a)
        assert any(d.startswith("defense:") for d in differences)
        # victim_files plus the three seeds that follow from the key change.
        assert any(d.startswith("victim_files:") for d in differences)
        assert a.diff(ScenarioSpec()) == []


class TestCliSpecPlumbing:
    def test_name_overrides_rederive_the_stored_seeds(self, tmp_path, capsys):
        """`repro run --spec X --attack Y` must not reuse X's seeds."""
        from repro.cli import main

        base, overridden = tmp_path / "a.json", tmp_path / "b.json"
        main(["run", "--emit-spec", str(base), "--no-run"])
        main(
            [
                "run",
                "--spec", str(base),
                "--attack", "trimming-attack",
                "--emit-spec", str(overridden),
                "--no-run",
            ]
        )
        capsys.readouterr()
        rebuilt = ScenarioSpec.load(str(overridden))
        assert rebuilt.attack == "trimming-attack"
        expected = ScenarioSpec(attack="trimming-attack")
        assert rebuilt.resolved_attack_seed == expected.resolved_attack_seed
        assert rebuilt.resolved_env_seed == expected.resolved_env_seed

    def test_same_value_flags_keep_a_spec_s_explicit_seeds(self, tmp_path, capsys):
        """A no-op flag must not reset grid-derived seeds (seed=0 provenance)."""
        from repro.cli import main

        cell = CampaignGrid.tiny().cells()[0]
        stored = tmp_path / "cell.json"
        ScenarioSpec.from_cell(cell).save(str(stored))
        out = tmp_path / "out.json"
        main(
            [
                "run",
                "--spec", str(stored),
                "--defense", cell.defense,
                "--emit-spec", str(out),
                "--no-run",
            ]
        )
        capsys.readouterr()
        rebuilt = ScenarioSpec.load(str(out))
        assert rebuilt.resolved_env_seed == cell.env_seed
        assert rebuilt.resolved_attack_seed == cell.attack_seed


class TestCampaignInterop:
    def test_from_cell_reproduces_the_cell_identity(self):
        grid = CampaignGrid.tiny()
        cell = grid.cells()[0]
        spec = ScenarioSpec.from_cell(cell, campaign_seed=grid.seed)
        assert spec.scenario_key == cell.cell_key
        assert spec.resolved_env_seed == cell.env_seed
        assert spec.resolved_workload_seed == cell.workload_seed
        assert spec.resolved_attack_seed == cell.attack_seed

    def test_to_cell_round_trips(self):
        grid = CampaignGrid.tiny()
        cell = grid.cells()[3]
        assert ScenarioSpec.from_cell(cell).to_cell() == cell

    def test_spec_derivation_matches_grid_expansion(self):
        """A spec seeded like the grid derives the very same cell seeds."""
        grid = CampaignGrid.tiny()
        for cell in grid.cells():
            spec = ScenarioSpec(
                defense=cell.defense,
                attack=cell.attack,
                workload=cell.workload,
                device=cell.device_config,
                victim_files=cell.victim_files,
                file_size_bytes=cell.file_size_bytes,
                user_activity_hours=cell.user_activity_hours,
                recent_edit_fraction=cell.recent_edit_fraction,
                seed=grid.seed,
            )
            assert spec.to_cell() == cell
