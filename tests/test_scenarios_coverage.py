"""Coverage lattice and ledger: binning, merging, serialization."""

from __future__ import annotations

import pytest

from repro.api import ScenarioSpec
from repro.scenarios import (
    LEDGER_VERSION,
    CoverageLedger,
    FuzzConfig,
    SpecFuzzer,
    ablation_bin,
    attack_family,
    region_of,
    scale_bin,
    workload_family,
)


class TestRegionLattice:
    @pytest.mark.parametrize(
        "attack,family",
        [
            ("classic", "classic"),
            ("classic-delete", "classic"),
            ("classic-trim", "classic"),
            ("entropy-mimicry", "entropy-mimicry"),
            ("entropy-mimicry-strong", "entropy-mimicry"),
            ("intermittent-encrypt-sparse", "intermittent-encrypt"),
            ("low-slow-v2-strong", "low-slow-v2"),
            ("none", "none"),
            ("gc-attack", "gc-attack"),
        ],
    )
    def test_attack_family_collapses_variants(self, attack, family):
        assert attack_family(attack) == family

    def test_workload_family_collapses_trace_volumes(self):
        assert workload_family("trace-hm") == "trace"
        assert workload_family("trace-fiu-res") == "trace"
        assert workload_family("office-edit") == "office-edit"
        assert workload_family("idle") == "idle"

    def test_scale_and_ablation_bins(self):
        assert scale_bin(1) == "files-small"
        assert scale_bin(8) == "files-small"
        assert scale_bin(9) == "files-medium"
        assert scale_bin(32) == "files-medium"
        assert scale_bin(33) == "files-large"
        assert ablation_bin(()) == "full"
        assert ablation_bin(("enhanced-trim",)) == "ablated"

    def test_region_of_joins_every_dimension(self):
        spec = ScenarioSpec(
            defense="RSSD",
            attack="classic-trim",
            workload="trace-hm",
            device="tiny",
            victim_files=16,
            ablation=("enhanced-trim",),
        )
        assert region_of(spec) == "RSSD|classic|trace|tiny|ablated|files-medium"

    def test_region_ignores_seed_and_file_size(self):
        a = ScenarioSpec(seed=1, file_size_bytes=4096)
        b = ScenarioSpec(seed=999, file_size_bytes=16384)
        assert region_of(a) == region_of(b)


class TestLedger:
    def test_record_returns_the_region_and_dedupes(self):
        ledger = CoverageLedger()
        spec = ScenarioSpec(seed=3)
        region = ledger.record(spec)
        assert region == region_of(spec)
        ledger.record(spec)
        assert ledger.regions[region] == [spec.spec_hash()]
        assert ledger.total_specs == 1

    def test_merge_is_a_union_idempotent_and_commutative(self):
        specs = [ScenarioSpec(seed=s) for s in (1, 2, 3)]
        a, b = CoverageLedger(), CoverageLedger()
        a.record(specs[0])
        a.record(specs[1])
        b.record(specs[1])
        b.record(specs[2])
        ab = CoverageLedger.from_dict(a.to_dict()).merge(b)
        ba = CoverageLedger.from_dict(b.to_dict()).merge(a)
        assert ab.to_json() == ba.to_json()
        assert ab.merge(b).to_json() == ab.to_json()

    def test_two_partial_runs_merge_to_one_full_run(self):
        """The acceptance gate: splitting a fuzz walk produces the same
        ledger as running it whole."""
        config = FuzzConfig.tiny()
        specs = SpecFuzzer(11, config).generate(10)
        full = CoverageLedger()
        for spec in specs:
            full.record(spec)
        first, second = CoverageLedger(), CoverageLedger()
        for spec in specs[:5]:
            first.record(spec)
        for spec in specs[5:]:
            second.record(spec)
        merged = first.merge(second)
        assert merged.to_json() == full.to_json()

    def test_uncovered_and_fraction(self):
        ledger = CoverageLedger()
        spec = ScenarioSpec(seed=1)
        region = ledger.record(spec)
        universe = [region, "other|region|x|y|full|files-small"]
        assert ledger.uncovered(universe) == ["other|region|x|y|full|files-small"]
        assert ledger.coverage_fraction(universe) == 0.5
        assert ledger.coverage_fraction([]) == 0.0

    def test_json_round_trip_is_bit_identical(self, tmp_path):
        ledger = CoverageLedger()
        for seed in (5, 6, 7):
            ledger.record(ScenarioSpec(seed=seed))
        path = tmp_path / "ledger.json"
        ledger.save(str(path))
        rebuilt = CoverageLedger.load(str(path))
        assert rebuilt.to_json() == ledger.to_json()
        assert rebuilt.version == LEDGER_VERSION

    def test_newer_version_is_refused(self):
        with pytest.raises(ValueError, match="newer"):
            CoverageLedger.from_dict({"version": LEDGER_VERSION + 1, "regions": {}})

    def test_malformed_regions_are_refused(self):
        with pytest.raises(ValueError, match="regions"):
            CoverageLedger.from_dict({"version": 1, "regions": ["not", "a", "map"]})

    def test_canonicalizes_unsorted_input(self):
        ledger = CoverageLedger(regions={"r": ["bb", "aa", "bb"]})
        assert ledger.regions["r"] == ["aa", "bb"]
