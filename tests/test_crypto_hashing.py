"""Tests for hash chains and Merkle trees (the evidence-chain substrate)."""

import pytest

from repro.crypto.hashing import HashChain, MerkleTree, chain_digest


class TestHashChain:
    def test_empty_chain_head_is_stable(self):
        assert HashChain().head == HashChain().head
        assert HashChain().length == 0

    def test_append_changes_head(self):
        chain = HashChain()
        initial = chain.head
        chain.append(b"entry-0")
        assert chain.head != initial
        assert chain.length == 1

    def test_verify_accepts_original_entries(self):
        chain = HashChain()
        entries = [b"op-%d" % i for i in range(50)]
        for entry in entries:
            chain.append(entry)
        assert chain.verify(entries)

    def test_verify_rejects_modified_entry(self):
        chain = HashChain()
        entries = [b"op-%d" % i for i in range(50)]
        for entry in entries:
            chain.append(entry)
        tampered = list(entries)
        tampered[20] = b"op-20-tampered"
        assert not chain.verify(tampered)

    def test_verify_rejects_removed_and_reordered_entries(self):
        chain = HashChain()
        entries = [b"op-%d" % i for i in range(10)]
        for entry in entries:
            chain.append(entry)
        assert not chain.verify(entries[:-1])
        reordered = entries[:5] + entries[6:] + [entries[5]]
        assert not chain.verify(reordered)

    def test_checkpoints_created_at_interval(self):
        chain = HashChain(checkpoint_interval=10)
        for i in range(35):
            chain.append(b"entry-%d" % i)
        assert len(chain.checkpoints) == 3
        assert chain.checkpoints[0].entry_index == 9

    def test_find_divergence_locates_tampering(self):
        chain = HashChain(checkpoint_interval=8)
        entries = [b"op-%d" % i for i in range(40)]
        for entry in entries:
            chain.append(entry)
        tampered = list(entries)
        tampered[3] = b"evil"
        divergence = chain.find_divergence(tampered)
        assert divergence is not None
        assert divergence <= 7  # first checkpoint after the tampered entry

    def test_find_divergence_clean_returns_none(self):
        chain = HashChain(checkpoint_interval=8)
        entries = [b"op-%d" % i for i in range(20)]
        for entry in entries:
            chain.append(entry)
        assert chain.find_divergence(entries) is None

    def test_replay_matches_incremental(self):
        chain = HashChain()
        entries = [b"a", b"b", b"c"]
        for entry in entries:
            chain.append(entry)
        assert HashChain.replay(entries) == chain.head

    def test_chain_digest_order_matters(self):
        assert chain_digest(b"a", b"b") != chain_digest(b"b", b"a")

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            HashChain(checkpoint_interval=0)


class TestMerkleTree:
    def test_single_leaf_root(self):
        tree = MerkleTree([b"only"])
        assert tree.leaf_count == 1
        proof = tree.proof(0)
        assert MerkleTree.verify_proof(b"only", proof, tree.root)

    def test_proofs_verify_for_every_leaf(self):
        leaves = [b"page-%d" % i for i in range(13)]  # odd count exercises padding
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            assert MerkleTree.verify_proof(leaf, tree.proof(index), tree.root)

    def test_wrong_leaf_fails_verification(self):
        leaves = [b"page-%d" % i for i in range(8)]
        tree = MerkleTree(leaves)
        proof = tree.proof(3)
        assert not MerkleTree.verify_proof(b"forged", proof, tree.root)

    def test_root_changes_with_any_leaf(self):
        leaves = [b"page-%d" % i for i in range(8)]
        modified = list(leaves)
        modified[5] = b"changed"
        assert MerkleTree(leaves).root != MerkleTree(modified).root

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_out_of_range_proof_rejected(self):
        with pytest.raises(IndexError):
            MerkleTree([b"a"]).proof(5)
