"""Scenario packs: serialization, golden replay, CLI integration."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import BackgroundStream, CompoundScenarioSpec, ScenarioSpec
from repro.api.spec import SpecValidationError
from repro.cli import main
from repro.scenarios import PACK_VERSION, PackEntry, ScenarioPack, run_pack

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_PACK = GOLDEN_DIR / "pack_tiny.json"

#: Result fields every golden entry pins (compound entries add more).
EXPECT_KEYS = ("recovery_fraction", "defended", "detected", "oplog_hash")


def golden_scenarios():
    """The scenarios frozen into tests/golden/pack_tiny.json."""
    small = dict(victim_files=4, user_activity_hours=0.5, seed=11)
    return [
        ("rssd-under-classic", ScenarioSpec(defense="RSSD", attack="classic", **small)),
        (
            "localssd-under-trim",
            ScenarioSpec(defense="LocalSSD", attack="trimming-attack", **small),
        ),
        (
            "rssd-under-noise",
            CompoundScenarioSpec(
                foreground=ScenarioSpec(defense="RSSD", attack="classic", **small),
                background=(BackgroundStream(workload="trace-hm", hours=0.5),),
                attack_offset=0.5,
            ),
        ),
    ]


def build_golden_pack() -> ScenarioPack:
    """Execute the golden scenarios and freeze their results as pins."""
    entries = []
    for name, scenario in golden_scenarios():
        if isinstance(scenario, ScenarioSpec):
            entry = PackEntry(name=name, spec=scenario.to_dict())
        else:
            entry = PackEntry(name=name, compound=scenario.to_dict())
        payload = entry.execute()
        expect = {key: payload[key] for key in EXPECT_KEYS}
        if not isinstance(scenario, ScenarioSpec):
            expect["post_noise_detected"] = payload["post_noise_detected"]
        entries.append(
            PackEntry(
                name=entry.name,
                spec=entry.spec,
                compound=entry.compound,
                expect=expect,
            )
        )
    return ScenarioPack(
        name="tiny",
        description=(
            "Golden regression pack: two plain scenarios and one compound "
            "multi-tenant scenario with pinned results."
        ),
        entries=tuple(entries),
    )


class TestSerialization:
    def sample_pack(self) -> ScenarioPack:
        return ScenarioPack(
            name="sample",
            entries=(
                PackEntry(
                    name="one",
                    spec=ScenarioSpec(seed=1).to_dict(),
                    expect={"defended": True},
                ),
            ),
        )

    def test_round_trip_is_bit_identical(self, tmp_path):
        pack = self.sample_pack()
        path = tmp_path / "pack.json"
        pack.save(str(path))
        assert ScenarioPack.load(str(path)).to_json() == pack.to_json()

    def test_newer_versions_are_refused(self):
        payload = self.sample_pack().to_dict()
        payload["version"] = PACK_VERSION + 1
        with pytest.raises(SpecValidationError, match="newer"):
            ScenarioPack.from_dict(payload)

    def test_unknown_fields_are_refused(self):
        payload = self.sample_pack().to_dict()
        payload["gpu_count"] = 8
        with pytest.raises(SpecValidationError, match="unknown"):
            ScenarioPack.from_dict(payload)

    def test_duplicate_entry_names_are_refused(self):
        entry = self.sample_pack().entries[0]
        with pytest.raises(SpecValidationError, match="duplicate"):
            ScenarioPack(name="dup", entries=(entry, entry))

    def test_entry_must_pick_exactly_one_scenario_kind(self):
        with pytest.raises(SpecValidationError, match="exactly one"):
            PackEntry(name="neither")
        with pytest.raises(SpecValidationError, match="exactly one"):
            PackEntry(
                name="both",
                spec=ScenarioSpec().to_dict(),
                compound=CompoundScenarioSpec().to_dict(),
            )

    def test_broken_scenario_fails_at_load_not_mid_run(self):
        with pytest.raises(KeyError):
            PackEntry(name="bad", spec={"defense": "NotADefense"})


class TestGoldenPack:
    def test_golden_pack_reproduces_pinned_results(self, update_golden):
        if update_golden:
            GOLDEN_DIR.mkdir(exist_ok=True)
            build_golden_pack().save(str(GOLDEN_PACK))
            pytest.skip(f"golden pack rewritten: {GOLDEN_PACK}")
        assert GOLDEN_PACK.exists(), (
            "golden pack missing; run pytest tests/test_scenario_packs.py "
            "--update-golden to create it"
        )
        pack = ScenarioPack.load(str(GOLDEN_PACK))
        report = run_pack(pack)
        assert report.ok, "\n".join(report.failures)
        assert [e.name for e in report.entries] == [
            name for name, _ in golden_scenarios()
        ]

    def test_golden_pack_definition_matches_the_file(self):
        """The scenarios (not the pins) in the file track this module."""
        pack = ScenarioPack.load(str(GOLDEN_PACK))
        stored = {}
        for entry in pack.entries:
            stored[entry.name] = entry.scenario().spec_hash()
        expected = {
            name: scenario.spec_hash() for name, scenario in golden_scenarios()
        }
        assert stored == expected, (
            "golden pack scenarios diverged from golden_scenarios(); "
            "run --update-golden after changing them"
        )

    def test_tampered_expectation_is_reported(self):
        pack = ScenarioPack.load(str(GOLDEN_PACK))
        entry = pack.entries[0]
        tampered = PackEntry(
            name=entry.name,
            spec=entry.spec,
            expect={**entry.expect, "defended": not entry.expect["defended"]},
        )
        report = run_pack(ScenarioPack(name="tampered", entries=(tampered,)))
        assert not report.ok
        assert any("defended expected" in failure for failure in report.failures)


class TestCli:
    def test_run_pack_exits_zero_and_reports(self, capsys):
        assert main(["run", "--pack", str(GOLDEN_PACK)]) == 0
        out = capsys.readouterr().out
        assert "[ok  ]" in out
        assert "3/3 entries ok" in out

    def test_run_pack_writes_payloads(self, tmp_path, capsys):
        out_path = tmp_path / "payloads.json"
        main(["run", "--pack", str(GOLDEN_PACK), "--output", str(out_path)])
        capsys.readouterr()
        payloads = json.loads(out_path.read_text(encoding="utf-8"))
        assert set(payloads) == {name for name, _ in golden_scenarios()}
        assert payloads["rssd-under-noise"]["post_noise_detected"] is True

    def test_failing_pack_exits_one(self, tmp_path, capsys):
        pack = ScenarioPack.load(str(GOLDEN_PACK))
        entry = pack.entries[0]
        tampered = ScenarioPack(
            name="tampered",
            entries=(
                PackEntry(
                    name=entry.name,
                    spec=entry.spec,
                    expect={**entry.expect, "oplog_hash": "0" * 64},
                ),
            ),
        )
        path = tmp_path / "tampered.json"
        tampered.save(str(path))
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--pack", str(path)])
        assert excinfo.value.code == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_pack_and_spec_flags_are_mutually_exclusive(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        ScenarioSpec().save(str(spec_path))
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["run", "--pack", str(GOLDEN_PACK), "--spec", str(spec_path)])

    def test_fuzz_emit_pack_replays_clean(self, tmp_path, capsys):
        pack_path = tmp_path / "fuzzed.json"
        assert (
            main(
                [
                    "fuzz",
                    "--budget", "2",
                    "--seed", "5",
                    "--emit-pack", str(pack_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["run", "--pack", str(pack_path)]) == 0
        assert "2/2 entries ok" in capsys.readouterr().out


class TestCliMultiSpec:
    def test_directory_of_specs_runs_each(self, tmp_path, capsys):
        spec_dir = tmp_path / "specs"
        spec_dir.mkdir()
        ScenarioSpec(seed=1).save(str(spec_dir / "a.json"))
        ScenarioSpec(seed=2, attack="trimming-attack").save(str(spec_dir / "b.json"))
        assert main(["run", "--spec", str(spec_dir)]) == 0
        out = capsys.readouterr().out
        assert "2/2 specs ok" in out

    def test_repeated_spec_flags_accumulate(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        ScenarioSpec(seed=1).save(str(a))
        ScenarioSpec(seed=2).save(str(b))
        assert main(["run", "--spec", str(a), "--spec", str(b)]) == 0
        assert "2/2 specs ok" in capsys.readouterr().out

    def test_one_bad_spec_fails_the_batch_but_runs_the_rest(
        self, tmp_path, capsys
    ):
        good, bad = tmp_path / "good.json", tmp_path / "bad.json"
        ScenarioSpec(seed=1).save(str(good))
        bad.write_text('{"defense": "NotADefense"}', encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--spec", str(bad), "--spec", str(good)])
        assert excinfo.value.code == 1
        out = capsys.readouterr().out
        assert "[FAIL]" in out and "[ok]" in out
        assert "1/2 specs ok" in out

    def test_empty_spec_directory_is_an_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit, match=r"no \*\.json"):
            main(["run", "--spec", str(empty)])
