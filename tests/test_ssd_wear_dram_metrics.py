"""Tests for wear leveling, the DRAM write buffer, and device metrics."""

import pytest

from repro.sim import SimClock
from repro.ssd.dram import WriteBuffer
from repro.ssd.flash import FlashArray, PageContent
from repro.ssd.ftl import FTL
from repro.ssd.geometry import SSDGeometry
from repro.ssd.metrics import DeviceMetrics, LatencyRecorder
from repro.ssd.wearlevel import StaticWearLeveler, compute_wear_stats


class TestWearStats:
    def test_fresh_array_has_zero_wear(self):
        flash = FlashArray(SSDGeometry.tiny())
        stats = compute_wear_stats(flash)
        assert stats.total_erases == 0
        assert stats.spread == 0
        assert stats.lifetime_consumed() == 0.0

    def test_spread_reflects_uneven_wear(self):
        flash = FlashArray(SSDGeometry.tiny())
        flash.set_erase_count(0, 50)
        stats = compute_wear_stats(flash)
        assert stats.max_erases == 50
        assert stats.spread == 50
        assert stats.lifetime_consumed(endurance_cycles=100) == pytest.approx(0.5)

    def test_invalid_endurance_rejected(self):
        flash = FlashArray(SSDGeometry.tiny())
        with pytest.raises(ValueError):
            compute_wear_stats(flash).lifetime_consumed(endurance_cycles=0)


class TestStaticWearLeveler:
    def test_does_not_run_below_threshold(self):
        flash = FlashArray(SSDGeometry.tiny())
        leveler = StaticWearLeveler(threshold=20)
        assert not leveler.should_run(flash)

    def test_migrates_cold_valid_pages(self):
        geometry = SSDGeometry.tiny()
        flash = FlashArray(geometry)
        ftl = FTL(geometry, flash, SimClock())
        # Fill a few blocks so there are closed (non-open) blocks holding
        # cold valid data for the leveler to migrate.
        for lpn in range(40):
            ftl.write(lpn, PageContent.synthetic(lpn, 4096))
        # Make the wear spread large so the leveler engages.
        for block_index in range(20, 25):
            flash.set_erase_count(block_index, 60)
        leveler = StaticWearLeveler(threshold=20)
        assert leveler.should_run(flash)
        moved = leveler.run(ftl)
        assert moved > 0
        # Live data still readable afterwards.
        for lpn in range(40):
            assert ftl.read(lpn).fingerprint == lpn

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StaticWearLeveler(threshold=0)
        with pytest.raises(ValueError):
            StaticWearLeveler(max_blocks_per_pass=0)


class TestWriteBuffer:
    def test_absorbs_writes_until_full(self):
        buffer = WriteBuffer(capacity_pages=4, drain_rate_pages_per_ms=0.001)
        results = [buffer.admit(now_us=0) for _ in range(6)]
        assert results[:4] == [True] * 4
        assert results[4] is False

    def test_drains_over_time(self):
        buffer = WriteBuffer(capacity_pages=4, drain_rate_pages_per_ms=1.0)
        for _ in range(4):
            assert buffer.admit(now_us=0)
        assert not buffer.admit(now_us=0)
        # After 4 ms the buffer has drained enough to absorb again.
        assert buffer.admit(now_us=4_000)

    def test_flush_empties_buffer(self):
        buffer = WriteBuffer(capacity_pages=8, drain_rate_pages_per_ms=0.001)
        for _ in range(5):
            buffer.admit(now_us=0)
        destaged = buffer.flush(now_us=10)
        assert destaged >= 4
        assert buffer.occupancy == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WriteBuffer(capacity_pages=0)
        with pytest.raises(ValueError):
            WriteBuffer(drain_rate_pages_per_ms=0)
        with pytest.raises(ValueError):
            WriteBuffer().admit(0, pages=0)


class TestDeviceMetrics:
    def test_write_amplification_zero_without_writes(self):
        assert DeviceMetrics().write_amplification == 0.0

    def test_write_amplification_ratio(self):
        metrics = DeviceMetrics()
        metrics.host_pages_written = 100
        metrics.flash_pages_programmed = 150
        assert metrics.write_amplification == pytest.approx(1.5)

    def test_lifetime_consumed_fraction(self):
        metrics = DeviceMetrics()
        metrics.flash_blocks_erased = 300
        assert metrics.lifetime_consumed_fraction(total_blocks=100, endurance_cycles=3000) == pytest.approx(0.001)
        with pytest.raises(ValueError):
            metrics.lifetime_consumed_fraction(total_blocks=0)

    def test_summary_contains_headline_keys(self):
        summary = DeviceMetrics().summary()
        for key in ("write_amplification", "gc_invocations", "p99_write_latency_us"):
            assert key in summary

    def test_latency_recorder_percentiles(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(float(value))
        assert recorder.count == 100
        assert recorder.mean_us == pytest.approx(50.5)
        assert recorder.percentile_us(0.5) == pytest.approx(50.5)
        assert recorder.percentile_us(0.99) > 98
