"""Golden-run regression suite for the campaign engine.

A small baseline campaign artifact is committed under ``tests/golden/``;
this suite re-runs the same grid with the same campaign seed and asserts
the fresh artifact reproduces the stored one *bit-for-bit* -- recovery
fractions, detection latencies, I/O overheads and oplog hash chains.
Any refactor of the SSD substrate, the defenses, the attacks or the
engine that changes observable behaviour trips this test.

Intentional changes: run ``pytest tests/test_campaign_golden.py
--update-golden`` to regenerate the artifact, then review the JSON diff
like any other code change before committing it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import run_campaign
from repro.campaign import CampaignArtifact, CampaignGrid

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_TINY = GOLDEN_DIR / "campaign_tiny.json"


def _fresh_tiny_artifact() -> CampaignArtifact:
    return run_campaign(CampaignGrid.tiny(), backend="sequential")


def test_tiny_campaign_reproduces_golden_artifact(update_golden):
    artifact = _fresh_tiny_artifact()
    text = artifact.to_json()
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        GOLDEN_TINY.write_text(text, encoding="utf-8")
        pytest.skip(f"golden artifact rewritten: {GOLDEN_TINY}")
    assert GOLDEN_TINY.exists(), (
        "golden artifact missing; run pytest tests/test_campaign_golden.py "
        "--update-golden to create it"
    )
    stored = GOLDEN_TINY.read_text(encoding="utf-8")
    if text != stored:
        differences = artifact.diff(CampaignArtifact.from_json(stored))
        pytest.fail(
            "campaign artifact diverged from tests/golden/campaign_tiny.json "
            "(run --update-golden if intentional):\n" + "\n".join(differences)
        )


def test_golden_artifact_parses_and_has_expected_shape():
    artifact = CampaignArtifact.load(str(GOLDEN_TINY))
    grid = CampaignGrid.tiny()
    assert artifact.campaign_seed == grid.seed
    assert len(artifact.cells) == len(grid.cells())
    assert artifact.cell_keys == sorted(artifact.cell_keys)
    # The shape the paper's Table 1 predicts for these rows.
    rssd_trim = artifact.cell("RSSD/trimming-attack/office-edit/tiny")
    assert rssd_trim.defended and rssd_trim.recovery_fraction >= 0.99
    assert rssd_trim.oplog_hash is not None
    local_trim = artifact.cell("LocalSSD/trimming-attack/office-edit/tiny")
    assert not local_trim.defended and local_trim.recovery_fraction == 0.0


def test_golden_diff_is_field_precise():
    artifact = CampaignArtifact.load(str(GOLDEN_TINY))
    tweaked = CampaignArtifact.from_json(artifact.to_json())
    cell = tweaked.cells[0]
    tweaked.cells[0] = type(cell)(**{**cell.to_dict(), "recovery_fraction": 0.123})
    differences = tweaked.diff(artifact)
    assert len(differences) == 1
    assert "recovery_fraction" in differences[0]
    assert artifact.diff(CampaignArtifact.from_json(artifact.to_json())) == []
