"""Tests for the embedded NIC, NVMe-oE protocol and remote targets."""

import pytest

from repro.nvmeoe.link import NetworkLink
from repro.nvmeoe.nic import EmbeddedNIC
from repro.nvmeoe.protocol import Capsule, CapsuleType, NVMeOEProtocol
from repro.nvmeoe.remote import (
    ObjectStore,
    RemoteTargetError,
    StorageServer,
    TieredRemote,
)
from repro.sim import SimClock
from repro.ssd.errors import FirmwareProtectionError


def make_nic():
    clock = SimClock()
    link = NetworkLink(clock, bandwidth_gbps=1.0, propagation_us=10.0)
    return EmbeddedNIC(clock, link)


class TestHardwareIsolation:
    def test_firmware_token_issued_once(self):
        nic = make_nic()
        token = nic.issue_firmware_token()
        assert token is not None
        with pytest.raises(FirmwareProtectionError):
            nic.issue_firmware_token()

    def test_send_without_token_rejected(self):
        nic = make_nic()
        nic.issue_firmware_token()
        with pytest.raises(FirmwareProtectionError):
            nic.send_capsule(None, 1000)
        assert nic.stats.rejected_host_accesses == 1

    def test_send_with_foreign_token_rejected(self):
        nic_a = make_nic()
        nic_b = make_nic()
        token_b = nic_b.issue_firmware_token()
        nic_a.issue_firmware_token()
        with pytest.raises(FirmwareProtectionError):
            nic_a.send_capsule(token_b, 1000)

    def test_send_with_valid_token_succeeds(self):
        nic = make_nic()
        token = nic.issue_firmware_token()
        completion = nic.send_capsule(token, 4096)
        assert completion > 0
        assert nic.stats.tx_capsules == 1
        assert nic.stats.tx_payload_bytes == 4096

    def test_receive_path_also_guarded(self):
        nic = make_nic()
        token = nic.issue_firmware_token()
        with pytest.raises(FirmwareProtectionError):
            nic.receive_capsule(None, 100)
        assert nic.receive_capsule(token, 100) > 0


class TestProtocol:
    def test_capsule_wire_size_includes_metadata(self):
        capsule = Capsule(CapsuleType.OFFLOAD_PAGES, 0, payload_bytes=1000, entries=10)
        assert capsule.wire_payload_bytes > 1000

    def test_capsule_validation(self):
        with pytest.raises(ValueError):
            Capsule(CapsuleType.ACK, -1, 0)
        with pytest.raises(ValueError):
            Capsule(CapsuleType.ACK, 0, -1)

    def test_control_json_roundtrip(self):
        capsule = Capsule(
            CapsuleType.OFFLOAD_LOG_SEGMENT, 7, 2048, entries=64, metadata={"segment_id": 3}
        )
        restored = Capsule.from_control_json(capsule.to_control_json())
        assert restored == capsule

    def test_sequences_increase_monotonically(self):
        protocol = NVMeOEProtocol()
        protocol.offload_pages(100, 4, 1, 4)
        protocol.offload_log_segment(50, 8, 0)
        protocol.fetch_pages(2)
        protocol.ack(0)
        assert protocol.capsules_sent == 4
        assert protocol.verify_ordering()
        assert [c.sequence for c in protocol.history] == [0, 1, 2, 3]


class TestObjectStore:
    def test_put_and_get(self):
        store = ObjectStore()
        protocol = NVMeOEProtocol()
        capsule = protocol.offload_pages(1000, 8, 1, 8)
        obj = store.put_capsule(capsule, arrival_us=10.0)
        assert store.get(obj.key).entries == 8
        assert store.object_count == 1
        assert store.stored_bytes == capsule.wire_payload_bytes

    def test_objects_are_immutable(self):
        store = ObjectStore()
        capsule = Capsule(CapsuleType.OFFLOAD_PAGES, 1, 100, entries=1)
        store.put_capsule(capsule, 1.0)
        with pytest.raises(RemoteTargetError):
            store.put_capsule(capsule, 2.0)

    def test_missing_key_rejected(self):
        with pytest.raises(RemoteTargetError):
            ObjectStore().get("nothing/here")

    def test_time_order_verification(self):
        store = ObjectStore()
        protocol = NVMeOEProtocol()
        for index in range(5):
            store.put_capsule(protocol.offload_pages(10, 1, index, index), float(index))
        assert store.verify_time_order()

    def test_list_keys_by_prefix(self):
        store = ObjectStore()
        protocol = NVMeOEProtocol()
        store.put_capsule(protocol.offload_pages(10, 1, 0, 0), 0.0)
        store.put_capsule(protocol.offload_log_segment(10, 1, 0), 1.0)
        assert len(store.list_keys("offload_pages/")) == 1
        assert len(store.list_keys()) == 2


class TestStorageServerAndTiering:
    def test_append_until_full_then_error(self):
        server = StorageServer(capacity_bytes=5_000)
        capsule = Capsule(CapsuleType.OFFLOAD_PAGES, 0, 2000, entries=2)
        server.append_capsule(capsule, 1.0)
        assert server.segment_count == 1
        big = Capsule(CapsuleType.OFFLOAD_PAGES, 1, 10_000, entries=4)
        with pytest.raises(RemoteTargetError):
            server.append_capsule(big, 2.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            StorageServer(capacity_bytes=0)

    def test_tiered_remote_spills_to_cloud(self):
        remote = TieredRemote(server=StorageServer(capacity_bytes=3_000), cloud=ObjectStore())
        small = Capsule(CapsuleType.OFFLOAD_PAGES, 0, 1000, entries=1)
        large = Capsule(CapsuleType.OFFLOAD_PAGES, 1, 100_000, entries=10)
        remote.store_capsule(small, 1.0)
        remote.store_capsule(large, 2.0)
        assert remote.server.segment_count == 1
        assert remote.cloud.object_count == 1
        assert remote.stored_entries == 11
        assert remote.verify_time_order()
