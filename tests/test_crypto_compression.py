"""Tests for the compressor and the compression ratio model."""

import pytest

from repro.crypto.compression import CompressionModel, CompressionResult, Compressor
from repro.ssd.flash import PageContent


class TestCompressionResult:
    def test_ratio_and_savings(self):
        result = CompressionResult(original_size=1000, compressed_size=400)
        assert result.ratio == pytest.approx(0.4)
        assert result.savings_bytes == 600

    def test_zero_original_size(self):
        assert CompressionResult(0, 0).ratio == 1.0

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            CompressionResult(-1, 0)


class TestCompressor:
    @pytest.fixture
    def compressor(self):
        return Compressor()

    def test_empty_input(self, compressor):
        assert compressor.compress(b"") == b""
        assert compressor.decompress(b"") == b""

    def test_roundtrip_text(self, compressor):
        data = b"meeting notes: discuss budget, discuss budget again, budget budget" * 30
        assert compressor.decompress(compressor.compress(data)) == data

    def test_roundtrip_binary(self, compressor):
        data = bytes((i * 37 + 11) % 256 for i in range(5000))
        assert compressor.decompress(compressor.compress(data)) == data

    def test_repetitive_data_compresses_well(self, compressor):
        data = b"the same sentence over and over. " * 200
        result = compressor.measure(data)
        assert result.ratio < 0.3

    def test_random_data_does_not_blow_up(self, compressor):
        import random

        rng = random.Random(1)
        data = bytes(rng.getrandbits(8) for _ in range(4096))
        result = compressor.measure(data)
        # Incompressible data may gain a little framing overhead but not much.
        assert result.compressed_size < len(data) * 1.1

    def test_corrupt_stream_detected(self, compressor):
        compressed = compressor.compress(b"hello hello hello hello hello hello")
        with pytest.raises(ValueError):
            compressor.decompress(b"\x07" + compressed)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Compressor(window_size=4)
        with pytest.raises(ValueError):
            Compressor(min_match=1)


class TestCompressionModel:
    def test_per_page_estimate_uses_content_ratio(self):
        model = CompressionModel(per_page_overhead_bytes=0)
        page = PageContent.synthetic(1, 4096, compress_ratio=0.25)
        result = model.compress_page(page)
        assert result.compressed_size == 1024

    def test_overhead_added(self):
        model = CompressionModel(per_page_overhead_bytes=32)
        page = PageContent.synthetic(1, 4096, compress_ratio=0.5)
        assert model.compress_page(page).compressed_size == 2048 + 32

    def test_incompressible_page_never_shrinks_below_original_plus_overhead(self):
        model = CompressionModel(per_page_overhead_bytes=32)
        page = PageContent.synthetic(1, 4096, compress_ratio=1.0)
        assert model.compress_page(page).compressed_size == 4096 + 32

    def test_batch_aggregation(self):
        model = CompressionModel(per_page_overhead_bytes=0)
        pages = [
            PageContent.synthetic(i, 4096, compress_ratio=0.5) for i in range(10)
        ]
        result = model.compress_pages(pages)
        assert result.original_size == 40960
        assert result.compressed_size == 20480

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            CompressionModel(per_page_overhead_bytes=-1)
