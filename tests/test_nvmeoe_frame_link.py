"""Tests for Ethernet framing and the link model."""

import pytest

from repro.nvmeoe.frame import (
    DEFAULT_MTU,
    ETHERNET_HEADER_BYTES,
    EthernetFrame,
    fragment_payload,
    wire_bytes_for_payload,
)
from repro.nvmeoe.link import NetworkLink
from repro.sim import SimClock, US_PER_SECOND


class TestFraming:
    def test_frame_wire_size_includes_header(self):
        frame = EthernetFrame("02:00:00:00:00:01", "02:00:00:00:00:02", 1000)
        assert frame.wire_size == 1000 + ETHERNET_HEADER_BYTES

    def test_invalid_frames_rejected(self):
        with pytest.raises(ValueError):
            EthernetFrame("", "02:00:00:00:00:02", 100)
        with pytest.raises(ValueError):
            EthernetFrame("a", "b", -1)

    def test_fragmentation_respects_mtu(self):
        frames = fragment_payload(4000, mtu=1500)
        assert [frame.payload_size for frame in frames] == [1500, 1500, 1000]
        assert [frame.sequence for frame in frames] == [0, 1, 2]

    def test_zero_payload_produces_no_frames(self):
        assert fragment_payload(0) == []

    def test_invalid_fragmentation_arguments(self):
        with pytest.raises(ValueError):
            fragment_payload(-1)
        with pytest.raises(ValueError):
            fragment_payload(100, mtu=10)

    def test_wire_bytes_accounts_for_per_frame_overhead(self):
        single = wire_bytes_for_payload(1500)
        double = wire_bytes_for_payload(3000)
        assert double == 2 * single


class TestNetworkLink:
    def test_bandwidth_determines_serialization_time(self):
        link = NetworkLink(SimClock(), bandwidth_gbps=1.0, propagation_us=0.0)
        one_mb = 1024 * 1024
        serialization = link.serialization_us(one_mb)
        # 1 MB over 1 Gb/s is ~8.4 ms; framing overhead adds a little.
        assert 8_000 < serialization < 10_000

    def test_faster_link_is_faster(self):
        slow = NetworkLink(SimClock(), bandwidth_gbps=1.0)
        fast = NetworkLink(SimClock(), bandwidth_gbps=10.0)
        assert fast.serialization_us(10**6) < slow.serialization_us(10**6)

    def test_transfers_serialize_behind_each_other(self):
        link = NetworkLink(SimClock(), bandwidth_gbps=1.0, propagation_us=100.0)
        first = link.transfer(100_000)
        second = link.transfer(100_000)
        assert second > first
        assert link.stats.transfers == 2
        assert link.backlog_us() > 0

    def test_transfer_includes_propagation(self):
        link = NetworkLink(SimClock(), bandwidth_gbps=100.0, propagation_us=500.0)
        completion = link.transfer(1000)
        assert completion >= 500.0

    def test_utilization_bounded_by_one(self):
        clock = SimClock()
        link = NetworkLink(clock, bandwidth_gbps=0.1)
        link.transfer(10**7)
        clock.advance(US_PER_SECOND)
        assert 0.0 < link.stats.utilization(float(US_PER_SECOND)) <= 1.0

    def test_raw_utilization_exceeds_one_under_backlog(self):
        # Commit far more transmit time than will have elapsed: the raw
        # view must expose the oversubscription the clamped view hides.
        clock = SimClock()
        link = NetworkLink(clock, bandwidth_gbps=0.1)
        for _ in range(5):
            link.transfer(10**7)
        clock.advance(US_PER_SECOND)
        elapsed = float(US_PER_SECOND)
        assert link.stats.raw_utilization(elapsed) > 1.0
        assert link.stats.utilization(elapsed) == 1.0
        assert link.backlog_us() > 0
        assert link.saturated

    def test_not_saturated_once_backlog_drains(self):
        clock = SimClock()
        link = NetworkLink(clock, bandwidth_gbps=1.0)
        link.transfer(1000)
        assert link.saturated
        clock.advance(US_PER_SECOND)
        assert not link.saturated
        assert link.backlog_us() == 0.0

    def test_raw_utilization_zero_elapsed(self):
        link = NetworkLink(SimClock())
        assert link.stats.raw_utilization(0.0) == 0.0

    def test_sustained_throughput_below_line_rate(self):
        link = NetworkLink(SimClock(), bandwidth_gbps=1.0)
        assert link.sustained_throughput_bytes_per_s() < 1e9 / 8

    def test_sustained_throughput_uses_the_frame_header_constant(self):
        # Pins the satellite fix: the efficiency factor must come from
        # frame.ETHERNET_HEADER_BYTES, not a hardcoded copy of it.
        for mtu in (DEFAULT_MTU, 9000):
            link = NetworkLink(SimClock(), bandwidth_gbps=1.0, mtu=mtu)
            expected = (1e9 / 8.0) * mtu / (mtu + ETHERNET_HEADER_BYTES)
            assert link.sustained_throughput_bytes_per_s() == pytest.approx(expected)

    def test_transfer_computes_wire_bytes_exactly_once(self, monkeypatch):
        import repro.nvmeoe.link as link_module

        calls = []
        real = link_module.wire_bytes_for_payload

        def counting(payload_bytes, mtu=DEFAULT_MTU):
            calls.append(payload_bytes)
            return real(payload_bytes, mtu=mtu)

        monkeypatch.setattr(link_module, "wire_bytes_for_payload", counting)
        link = NetworkLink(SimClock(), bandwidth_gbps=1.0)
        link.transfer(100_000)
        assert len(calls) == 1
        # And the counters agree with the closed form.
        assert link.stats.wire_bytes_sent == real(100_000)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            NetworkLink(SimClock(), bandwidth_gbps=0)
        with pytest.raises(ValueError):
            NetworkLink(SimClock(), propagation_us=-1)
        with pytest.raises(ValueError):
            NetworkLink(SimClock()).transfer(-5)
