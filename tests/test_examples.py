"""Examples smoke suite: every ``examples/*.py`` script must run clean.

The examples are the first code a new user executes; this suite (and the
CI ``examples-smoke`` job that runs it) keeps them working against the
current ``repro.api`` surface.  ``REPRO_SMOKE=1`` shrinks the long
recovery walkthrough to one small scenario, mirroring the benchmark
suite's smoke convention.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    """New examples must be added to the smoke run, not forgotten."""
    assert EXAMPLES == [
        "forensic_investigation.py",
        "quickstart.py",
        "ransomware_recovery.py",
        "retention_planning.py",
        "scenario_session.py",
    ]


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_clean(example):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_SMOKE"] = "1"
    # The examples must be clean citizens of the new facade: a
    # DeprecationWarning raised anywhere (library frames included) is a
    # hard failure, not a suppressed default-filter line.
    env["PYTHONWARNINGS"] = "error::DeprecationWarning"
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{example} failed (exit {completed.returncode}):\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{example} printed nothing"
