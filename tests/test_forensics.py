"""Unit tests for the post-attack forensics & point-in-time recovery package."""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.api import provision_environment
from repro.attacks.classic import ClassicRansomware, DestructionMode
from repro.attacks.trimming_attack import TrimmingAttack
from repro.campaign import registries
from repro.core.config import RSSDConfig
from repro.core.rssd import RSSD
from repro.forensics import (
    ForensicsEngine,
    OperationTimeline,
    TraceRecorder,
    reference_image,
)
from repro.sim import SimClock
from repro.ssd.device import SSD, HostOpType
from repro.ssd.flash import PageContent


def make_content(tag: int, entropy: float = 3.0) -> PageContent:
    return PageContent.synthetic(
        fingerprint=tag, length=4096, entropy=entropy, compress_ratio=0.5
    )


def attacked_rssd(attack_cls=TrimmingAttack, drain: bool = True):
    """A tiny RSSD that lived through a seeded attack, plus ground truth."""
    rssd = RSSD(config=RSSDConfig.tiny())
    recorder = TraceRecorder()
    rssd.ssd.add_observer(recorder)
    env = provision_environment(rssd, victim_files=10, file_size_bytes=8192, seed=5)
    registries.office_edit_activity(env, random.Random(7), 4.0, 0.3)
    outcome = attack_cls(seed=3).execute(env)
    if drain:
        rssd.drain_offload_queue()
    return rssd, recorder, outcome


# ---------------------------------------------------------------------------
# Timeline reconstruction
# ---------------------------------------------------------------------------


class TestTimeline:
    def test_multi_page_entries_expand_to_per_page_events(self, rssd):
        rssd.write_batch(4, [make_content(1), make_content(2), make_content(3)])
        timeline = OperationTimeline.from_oplog(rssd.oplog)
        assert [event.lba for event in timeline.events] == [4, 5, 6]
        # Only the first page of an aggregated write carries its hash.
        assert timeline.events[0].exact_fingerprint
        assert timeline.events[0].fingerprint == 1
        assert not timeline.events[1].exact_fingerprint
        assert timeline.events[1].fingerprint is None

    def test_governing_event_and_state_at_follow_write_trim_order(self, rssd):
        rssd.write(0, make_content(10))
        t_written = rssd.clock.now_us
        rssd.clock.advance(50)
        rssd.write(0, make_content(11))
        t_overwritten = rssd.clock.now_us
        rssd.clock.advance(50)
        rssd.trim(0, 1)
        timeline = OperationTimeline.from_oplog(rssd.oplog, rssd.retention)
        history = timeline.history(0)
        assert history.writes == 2 and history.trims == 1
        assert history.state_at(t_written) == 10
        assert history.state_at(t_overwritten) == 11
        assert history.state_at(rssd.clock.now_us) is None
        assert history.governing_event(t_written).op_type is HostOpType.WRITE
        assert timeline.image_at(t_overwritten)[0] == 11

    def test_timeline_includes_retained_versions(self, rssd):
        rssd.write(3, make_content(21))
        rssd.clock.advance(10)
        rssd.write(3, make_content(22))
        timeline = OperationTimeline.from_oplog(rssd.oplog, rssd.retention)
        versions = timeline.history(3).versions
        assert [v.fingerprint for v in versions] == [21]
        assert versions[0].offloaded in (False, True)

    def test_empty_log_yields_empty_verified_timeline(self, rssd):
        timeline = OperationTimeline.from_oplog(rssd.oplog, rssd.retention)
        assert timeline.events == []
        assert timeline.chain_verified
        assert timeline.lbas() == []
        assert timeline.span_us == 0
        assert timeline.image_at(10**12) == {}


# ---------------------------------------------------------------------------
# Chain tampering
# ---------------------------------------------------------------------------


class TestChainTampering:
    def test_tampered_entry_breaks_verification(self):
        rssd, _, _ = attacked_rssd()
        segment = rssd.oplog.sealed_segments()[0]
        original = segment.entries[4]
        segment.entries[4] = dataclasses.replace(original, fingerprint=0xBAD)
        timeline = OperationTimeline.from_oplog(rssd.oplog, rssd.retention)
        assert not timeline.chain_verified
        # Tampering is localised to the containing checkpoint interval
        # (tiny config checkpoints every 16 entries, so the divergence
        # surfaces at the first checkpoint at or after the bad entry).
        assert timeline.tampered_at is not None
        assert 4 <= timeline.tampered_at < 16

        engine = ForensicsEngine(rssd)
        status = engine.verify_chain()
        assert not status.chain_verified and not status.trustworthy
        assert any("oplog-chain-mismatch" in error for error in status.errors())

    def test_clean_chain_verifies_with_no_errors(self):
        rssd, _, _ = attacked_rssd()
        status = ForensicsEngine(rssd).verify_chain()
        assert status.chain_verified and status.remote_time_order_ok
        assert status.trustworthy and status.errors() == []

    def test_remote_order_violation_is_a_structured_error(self):
        rssd, _, _ = attacked_rssd()
        segments = rssd.remote.server._segments
        assert len(segments) >= 2, "scenario must offload at least two capsules"
        segments[0], segments[-1] = segments[-1], segments[0]
        status = ForensicsEngine(rssd).verify_chain()
        assert status.remote_time_order_ok is False and not status.trustworthy
        assert any("remote-time-order-violation" in error for error in status.errors())


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


class TestClassification:
    @pytest.mark.parametrize(
        "attack_factory, expected_pattern",
        [
            (lambda: ClassicRansomware(destruction=DestructionMode.OVERWRITE, seed=3),
             "encrypt-overwrite"),
            (lambda: TrimmingAttack(seed=3), "encrypt-then-trim"),
        ],
    )
    def test_patterns(self, attack_factory, expected_pattern):
        rssd = RSSD(config=RSSDConfig.tiny())
        env = provision_environment(rssd, victim_files=10, file_size_bytes=8192, seed=5)
        registries.office_edit_activity(env, random.Random(7), 4.0, 0.3)
        outcome = attack_factory().execute(env)
        classification = ForensicsEngine(rssd).classify()
        assert classification.pattern == expected_pattern
        assert classification.malicious_streams == outcome.malicious_streams
        assert classification.first_malicious_us is not None
        assert classification.first_malicious_us >= outcome.start_us
        assert classification.last_malicious_us <= outcome.end_us
        # The blast radius covers at least every victim page.
        assert classification.blast_radius_pages >= len(outcome.victim_lbas)
        assert classification.blast_radius_bytes == (
            classification.blast_radius_pages * rssd.page_size
        )

    def test_no_attack_classifies_as_none(self, rssd):
        env = provision_environment(rssd, victim_files=6, file_size_bytes=8192, seed=5)
        registries.office_edit_activity(env, random.Random(7), 2.0, 0.3)
        classification = ForensicsEngine(rssd).classify()
        assert classification.pattern == "none"
        assert not classification.attack_found
        assert classification.blast_radius_pages == 0


# ---------------------------------------------------------------------------
# Point-in-time recovery
# ---------------------------------------------------------------------------


class TestPointInTimeRecovery:
    def test_rebuild_matches_reference_replay_of_trace_prefix(self):
        rssd, recorder, outcome = attacked_rssd()
        engine = ForensicsEngine(rssd)
        target_us = outcome.start_us
        image = engine.recover_to(target_us)
        assert image.is_exact and image.pages_lost == 0
        reference = reference_image(recorder.ops, target_us)
        assert image.matches(reference)

    def test_rebuild_matches_device_level_replay_of_trace_prefix(self):
        """Replaying the recorded prefix on a fresh SSD gives the same image."""
        rssd, recorder, outcome = attacked_rssd()
        target_us = outcome.start_us
        image = ForensicsEngine(rssd).recover_to(target_us)

        fresh = SSD(geometry=rssd.config.geometry, clock=SimClock())
        for op in recorder.prefix(target_us):
            if op.op_type is HostOpType.WRITE:
                assert op.npages == 1, "campaign traffic is page-granular"
                fresh.write(op.lba, op.content)
            elif op.op_type is HostOpType.TRIM:
                fresh.trim(op.lba, op.npages)
        for lba, fingerprint in image.pages.items():
            live = fresh.read_content(lba)
            if fingerprint is None:
                assert live is None
            else:
                assert live is not None and live.fingerprint == fingerprint

    def test_intermediate_timestamps_recover_every_prefix(self):
        rssd, recorder, outcome = attacked_rssd(attack_cls=TrimmingAttack)
        engine = ForensicsEngine(rssd)
        timestamps = sorted({op.timestamp_us for op in recorder.ops})
        for target_us in timestamps[:: max(1, len(timestamps) // 8)]:
            image = engine.recovery().rebuild_image(target_us)
            assert image.matches(reference_image(recorder.ops, target_us)), (
                f"rebuild diverged from trace-prefix replay at t={target_us}"
            )

    def test_multi_page_batch_writes_compare_by_coverage(self):
        """Pages an aggregated write left hash-less still match the reference."""
        rssd = RSSD(config=RSSDConfig.tiny())
        recorder = TraceRecorder()
        rssd.ssd.add_observer(recorder)
        rssd.write_batch(0, [make_content(1), make_content(2), make_content(3)])
        rssd.clock.advance(10)
        target_us = rssd.clock.now_us
        rssd.clock.advance(10)
        rssd.write_batch(0, [make_content(9), make_content(9), make_content(9)])
        image = ForensicsEngine(rssd).recover_to(target_us)
        assert sorted(image.pages) == [0, 1, 2]
        # Only the first page of the batch carries evidence; the rest
        # recover by timestamp and are flagged unverified, not divergent.
        assert image.unverified == [1, 2]
        assert not image.is_exact
        assert image.matches(reference_image(recorder.ops, target_us))

    def test_partial_offload_still_recovers_from_local_copies(self):
        rssd, recorder, outcome = attacked_rssd(drain=False)
        assert rssd.retention.pending_pages >= 0
        image = ForensicsEngine(rssd).recover_to(outcome.start_us)
        assert image.is_exact
        assert image.matches(reference_image(recorder.ops, outcome.start_us))

    def test_destroyed_unoffloaded_version_is_reported_lost(self):
        rssd, _, outcome = attacked_rssd(attack_cls=TrimmingAttack)
        # Simulate a misconfigured retention ablation: one victim page's
        # archived versions were physically destroyed before offload.
        victim = outcome.victim_lbas[0]
        versions = rssd.retention._archive[victim]
        assert versions, "victim page must have archived versions"
        for record in versions:
            record.released = True
            record.offloaded = False
        image = ForensicsEngine(rssd).recover_to(outcome.start_us)
        assert victim in image.lost
        assert not image.is_exact

    def test_remote_only_pages_count_as_remote_recoveries(self):
        rssd, _, outcome = attacked_rssd()
        victim = outcome.victim_lbas[0]
        for record in rssd.retention._archive[victim]:
            assert record.offloaded, "drained scenario must have offloaded versions"
            record.released = True  # local copy reclaimed by GC
        image = ForensicsEngine(rssd).recover_to(outcome.start_us)
        assert victim in image.recovered_remote
        assert image.is_exact

    def test_simulated_fetch_accounts_recovery_time(self):
        rssd, _, outcome = attacked_rssd()
        victim = outcome.victim_lbas[0]
        for record in rssd.retention._archive[victim]:
            record.released = True
        engine = ForensicsEngine(rssd)
        before = rssd.clock.now_us
        image = engine.recover_to(outcome.start_us, simulate_fetch=True)
        assert image.recovered_remote
        assert image.duration_us > 0
        assert rssd.clock.now_us > before

    def test_apply_writes_image_back_to_device(self):
        rssd, _, outcome = attacked_rssd(attack_cls=TrimmingAttack)
        engine = ForensicsEngine(rssd)
        image = engine.recover_to(outcome.start_us)
        written = engine.recovery().apply(image)
        assert written == image.pages_recovered
        for lba, fingerprint in image.pages.items():
            live = rssd.read_content(lba)
            if fingerprint is None:
                assert live is None
            else:
                assert live is not None and live.fingerprint == fingerprint

    def test_empty_log_recovers_nothing(self, rssd):
        engine = ForensicsEngine(rssd)
        image = engine.recover_to(10**12)
        assert image.pages == {} and image.is_exact
        assert engine.snapshots() == []


# ---------------------------------------------------------------------------
# Snapshots & the combined report
# ---------------------------------------------------------------------------


class TestSnapshotsAndReport:
    def test_snapshots_cover_sealed_segments_and_log_head(self):
        rssd = RSSD(config=RSSDConfig.tiny())  # seals every 32 entries
        for index in range(70):
            rssd.write(index % 16, make_content(index))
            rssd.clock.advance(5)
        snapshots = ForensicsEngine(rssd).snapshots()
        seals = [snap for snap in snapshots if snap.kind == "segment-seal"]
        assert len(seals) == rssd.oplog.sealed_segment_count == 2
        assert snapshots[-1].kind == "log-head"
        assert [snap.timestamp_us for snap in snapshots] == sorted(
            snap.timestamp_us for snap in snapshots
        )

    def test_investigate_roundtrips_through_canonical_json(self):
        rssd, _, _ = attacked_rssd()
        report = ForensicsEngine(rssd).investigate()
        from repro.forensics import ForensicReport

        clone = ForensicReport.from_json(report.to_json())
        assert clone == report
        assert clone.to_json() == report.to_json()

    def test_investigate_without_attack_has_empty_recovery_section(self, rssd):
        rssd.write(0, make_content(1))
        report = ForensicsEngine(rssd).investigate()
        assert report.pattern == "none"
        assert report.recovery_target_us is None
        assert report.pages_recovered == 0 and report.recovery_exact
