"""Tests for the detection-aware (adaptive) attack family.

Covers the evasion mechanics (entropy shaping, partial encryption,
computed dilution, trim interleaving), the regression pinning the
entropy-jump detector fix (mimicry evades the pre-fix classifier,
is caught post-fix at default thresholds), the forensic naming of the
evasive families, and their registration in the campaign registry.
"""

import pytest

from repro.api import provision_environment
from repro.attacks.adaptive import (
    EntropyMimicryAttack,
    EvasionPolicy,
    IntermittentEncryptionAttack,
    RateThrottledAttack,
    TrimInterleavedWipeAttack,
    shape_entropy,
)
from repro.campaign import registries
from repro.campaign.engine import run_cell
from repro.campaign.grid import CampaignGrid
from repro.crypto.entropy import EntropyClassifier
from repro.ssd.device import SSD
from repro.ssd.flash import PageContent, shannon_entropy
from repro.ssd.geometry import SSDGeometry


def fresh_environment(victim_files=8):
    device = SSD(geometry=SSDGeometry.tiny())
    return provision_environment(device, victim_files=victim_files, file_size_bytes=8192)


def page_chunks(data, page_size=4096):
    return [data[i : i + page_size] for i in range(0, len(data), page_size)]


class TestEvasionPolicy:
    def test_defaults_are_light(self):
        policy = EvasionPolicy.light()
        assert policy.bits_per_symbol == 7
        assert policy.encrypt_stride == 2

    def test_strong_is_stronger_everywhere(self):
        light, strong = EvasionPolicy.light(), EvasionPolicy.strong()
        assert strong.bits_per_symbol < light.bits_per_symbol
        assert strong.encrypt_stride > light.encrypt_stride
        assert strong.max_high_entropy_fraction < light.max_high_entropy_fraction
        assert strong.op_gap_us > light.op_gap_us

    def test_decoy_count_enforces_fraction(self):
        policy = EvasionPolicy(max_high_entropy_fraction=0.4)
        pages = 4
        decoys = policy.decoys_for(pages)
        assert pages / (pages + decoys) <= 0.4
        assert policy.decoys_for(0) == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EvasionPolicy(bits_per_symbol=0)
        with pytest.raises(ValueError):
            EvasionPolicy(bits_per_symbol=9)
        with pytest.raises(ValueError):
            EvasionPolicy(encrypt_stride=0)
        with pytest.raises(ValueError):
            EvasionPolicy(max_high_entropy_fraction=0.0)
        with pytest.raises(ValueError):
            EvasionPolicy(op_gap_us=-1)


class TestEntropyShaping:
    def test_shaped_entropy_tracks_alphabet_width(self):
        random_ish = bytes((i * 193 + 71) % 256 for i in range(8192))
        for bits in (5, 6, 7):
            shaped = shape_entropy(random_ish, bits)
            assert abs(shannon_entropy(shaped) - bits) < 0.1
            assert max(shaped) < 2**bits

    def test_eight_bits_is_identity(self):
        data = b"identity payload"
        assert shape_entropy(data, 8) == data

    def test_expansion_factor(self):
        data = bytes(range(256)) * 4
        shaped = shape_entropy(data, 6)
        assert len(shaped) == pytest.approx(len(data) * 8 / 6, abs=1)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            shape_entropy(b"x", 0)


class TestEntropyMimicry:
    def test_destroys_every_file_below_the_entropy_line(self):
        env = fresh_environment()
        originals = {name: env.fs.read_file(name) for name in env.fs.list_files()}
        outcome = EntropyMimicryAttack(seed=5).execute(env)
        assert outcome.pages_encrypted > 0
        for name in outcome.victim_files:
            mimic = env.fs.read_file(name)
            assert mimic != originals[name]
            for page in page_chunks(mimic):
                assert shannon_entropy(page) < 7.2

    def test_regression_pre_fix_classifier_is_evaded_post_fix_catches(self):
        """The acceptance regression: compress-then-encrypt mimicry beats
        the pre-fix entropy classifier (absolute threshold only, the
        ``delta >= 0`` bug) but the post-fix entropy-jump trigger catches
        it at default thresholds."""
        env = fresh_environment()
        originals = {name: env.fs.read_file(name) for name in env.fs.list_files()}
        outcome = EntropyMimicryAttack(seed=5).execute(env)
        classifier = EntropyClassifier()  # default thresholds: 7.2 / 2.0
        caught_post_fix = 0
        pages_checked = 0
        for name in outcome.victim_files:
            mimic_pages = page_chunks(env.fs.read_file(name))
            original_pages = page_chunks(originals[name])
            for mimic, original in zip(mimic_pages, original_pages):
                content = PageContent.from_bytes(mimic)
                previous = PageContent.from_bytes(original)
                verdict = classifier.classify(content, previous=previous)
                # Pre-fix semantics: absolute threshold AND delta >= 0.
                entropy = classifier.entropy_of(content)
                delta = entropy - classifier.entropy_of(previous)
                pre_fix = entropy >= classifier.encrypted_threshold and delta >= 0
                assert not pre_fix, "mimicry must evade the pre-fix classifier"
                pages_checked += 1
                if verdict.looks_encrypted:
                    caught_post_fix += 1
        assert pages_checked > 0
        assert caught_post_fix == pages_checked, (
            "post-fix jump trigger must catch every mimicry page at defaults"
        )

    def test_strong_shaping_ducks_even_the_jump_detector(self):
        env = fresh_environment()
        originals = {name: env.fs.read_file(name) for name in env.fs.list_files()}
        attack = EntropyMimicryAttack(policy=EvasionPolicy.strong(), seed=5)
        outcome = attack.execute(env)
        classifier = EntropyClassifier()
        name = outcome.victim_files[0]
        for mimic, original in zip(
            page_chunks(env.fs.read_file(name)), page_chunks(originals[name])
        ):
            verdict = classifier.classify(
                PageContent.from_bytes(mimic),
                previous=PageContent.from_bytes(original),
            )
            assert not verdict.looks_encrypted

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EntropyMimicryAttack(inter_file_delay_us=-1)


class TestIntermittentEncryption:
    def test_encrypts_every_kth_page(self):
        env = fresh_environment()
        originals = {name: env.fs.read_file(name) for name in env.fs.list_files()}
        outcome = IntermittentEncryptionAttack(seed=5).execute(env)
        stride = EvasionPolicy.light().encrypt_stride
        name = outcome.victim_files[0]
        pages = page_chunks(env.fs.read_file(name))
        original_pages = page_chunks(originals[name])
        for index, (page, original) in enumerate(zip(pages, original_pages)):
            if index % stride == 0:
                assert page != original
                assert shannon_entropy(page) > 7.2
            else:
                assert page == original

    def test_partial_encryption_counts_only_encrypted_pages(self):
        env = fresh_environment()
        outcome = IntermittentEncryptionAttack(seed=5).execute(env)
        total_pages = sum(
            len(page_chunks(data))
            for data in outcome.original_contents.values()
        )
        assert 0 < outcome.pages_encrypted < total_pages


class TestRateThrottled:
    def test_dilutes_high_entropy_fraction(self):
        env = fresh_environment()
        observed = []
        class Recorder:
            def on_host_op(self, op):
                if op.content is not None and op.stream_id != env.user_stream:
                    observed.append(op.content.entropy)
        env.device.add_observer(Recorder())
        RateThrottledAttack(seed=5).execute(env)
        high = sum(1 for entropy in observed if entropy >= 7.2)
        assert observed, "attack issued no writes"
        policy = EvasionPolicy.light()
        assert high / len(observed) <= policy.max_high_entropy_fraction + 0.05

    def test_paces_between_files(self):
        env = fresh_environment()
        start = env.clock.now_us
        outcome = RateThrottledAttack(seed=5).execute(env)
        policy = EvasionPolicy.light()
        assert outcome.end_us - start >= len(outcome.victim_files) * policy.op_gap_us


class TestTrimInterleavedWipe:
    def test_trims_originals_with_shaped_copies(self):
        env = fresh_environment()
        outcome = TrimInterleavedWipeAttack(seed=5).execute(env)
        assert outcome.pages_trimmed > 0
        for name in outcome.victim_files:
            assert not env.fs.exists(name)
            locked = env.fs.read_file(name + ".locked")
            for page in page_chunks(locked):
                assert shannon_entropy(page) < 7.2

    def test_plaintext_unrecoverable_from_plain_device(self):
        env = fresh_environment()
        outcome = TrimInterleavedWipeAttack(seed=5).execute(env)
        survivors = 0
        for lba, fingerprint in outcome.original_fingerprints.items():
            live = env.device.read_content(lba)
            if live is not None and live.fingerprint == fingerprint:
                survivors += 1
        assert survivors == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TrimInterleavedWipeAttack(decoys_per_file=-1)


class TestRegistryAndForensics:
    def test_every_evasive_attack_is_registered(self):
        for name in registries.EVASIVE_ATTACKS:
            assert name in registries.ATTACKS
        for name in registries.EVASIVE_ATTACKS_FULL:
            attack = registries.ATTACKS[name](seed=3)
            assert attack.name in name

    def test_strength_variants_carry_strong_policy(self):
        strong = registries.ATTACKS["entropy-mimicry-strong"](3)
        assert strong.policy == EvasionPolicy.strong()
        light = registries.ATTACKS["entropy-mimicry"](3)
        assert light.policy == EvasionPolicy.light()

    @pytest.mark.parametrize(
        "attack,pattern",
        [
            ("entropy-mimicry", "entropy-mimicry"),
            ("intermittent-encrypt", "intermittent-encrypt"),
            ("low-slow-v2", "low-and-slow"),
            ("trim-interleave", "trim-interleaved-wipe"),
        ],
    )
    def test_forensics_names_the_evasive_families(self, attack, pattern):
        grid = CampaignGrid.evasion_tiny()
        key = f"RSSD/{attack}/office-edit/tiny"
        spec = [s for s in grid.cells() if s.cell_key == key][0]
        result = run_cell(spec)
        assert result.forensic_pattern == pattern

    def test_evasive_attacks_beat_window_detectors_but_not_rssd(self):
        """The motivating measurement: on the tiny evasion grid no
        host/firmware *window* detector fires, while RSSD's offloaded
        full-history detector (jump-aware post-fix) catches every
        family -- and RSSD still recovers everything."""
        grid = CampaignGrid.evasion_tiny()
        for spec in grid.cells():
            result = run_cell(spec)
            if spec.defense == "RSSD":
                assert result.detected, f"{spec.cell_key} should be detected"
                assert result.recovery_fraction == 1.0
            else:
                assert not result.detected, (
                    f"{spec.cell_key} unexpectedly detected"
                )
