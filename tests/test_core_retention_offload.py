"""Tests for the retention manager and the NVMe-oE offload engine."""

import pytest

from repro.core.config import RSSDConfig
from repro.core.offload import OffloadEngine
from repro.core.retention import RetentionManager
from repro.core.rssd import RSSD
from repro.nvmeoe.link import NetworkLink
from repro.nvmeoe.nic import EmbeddedNIC
from repro.nvmeoe.remote import TieredRemote
from repro.sim import SimClock
from repro.ssd.flash import PageContent
from repro.ssd.ftl import InvalidationCause, StalePage


def stale(lpn, version=1, cause=InvalidationCause.OVERWRITE, written=0, invalidated=10):
    return StalePage(
        lpn=lpn,
        ppn=lpn + 100,
        content=PageContent.synthetic(fingerprint=lpn * 10 + version, length=4096),
        written_us=written,
        invalidated_us=invalidated,
        cause=cause,
        version=version,
    )


def make_engine(retention, batch_pages=8):
    clock = SimClock()
    link = NetworkLink(clock, bandwidth_gbps=1.0, propagation_us=50.0)
    nic = EmbeddedNIC(clock, link)
    remote = TieredRemote()
    return OffloadEngine(clock, nic, remote, retention, batch_pages=batch_pages)


class TestRetentionManager:
    def test_retains_everything_by_default(self):
        manager = RetentionManager()
        record = stale(1)
        manager.on_invalidate(record)
        assert not manager.may_release(record)
        assert manager.pending_pages == 1
        assert manager.archived_versions == 1

    def test_trimmed_data_also_retained(self):
        manager = RetentionManager()
        record = stale(2, cause=InvalidationCause.TRIM)
        manager.on_invalidate(record)
        assert not manager.may_release(record)

    def test_retain_trimmed_can_be_disabled_for_ablation(self):
        manager = RetentionManager(retain_trimmed=False)
        trimmed = stale(2, cause=InvalidationCause.TRIM)
        overwritten = stale(3, cause=InvalidationCause.OVERWRITE)
        manager.on_invalidate(trimmed)
        manager.on_invalidate(overwritten)
        assert manager.may_release(trimmed)
        assert not manager.may_release(overwritten)

    def test_release_only_after_offload(self):
        manager = RetentionManager()
        record = stale(1)
        manager.on_invalidate(record)
        manager.mark_offloaded([record])
        assert manager.may_release(record)
        manager.on_release(record)
        assert manager.stats.pages_released_after_offload == 1
        assert manager.stats.data_loss_pages == 0

    def test_unoffloaded_release_counted_as_data_loss(self):
        manager = RetentionManager()
        record = stale(1)
        manager.on_invalidate(record)
        manager.on_release(record)
        assert manager.stats.data_loss_pages == 1

    def test_take_pending_in_time_order(self):
        manager = RetentionManager()
        records = [stale(lpn, invalidated=lpn * 10) for lpn in range(5)]
        for record in records:
            manager.on_invalidate(record)
        batch = manager.take_pending(3)
        assert [record.lpn for record in batch] == [0, 1, 2]
        assert manager.pending_pages == 2

    def test_requeue_puts_records_back_at_the_front(self):
        manager = RetentionManager()
        records = [stale(lpn) for lpn in range(3)]
        for record in records:
            manager.on_invalidate(record)
        batch = manager.take_pending(2)
        manager.requeue(batch)
        again = manager.take_pending(3)
        assert [record.lpn for record in again] == [0, 1, 2]

    def test_version_archive_lookup(self):
        manager = RetentionManager()
        manager.on_invalidate(stale(7, version=1, written=100))
        manager.on_invalidate(stale(7, version=2, written=200))
        versions = manager.versions_for(7)
        assert [record.version for record in versions] == [1, 2]
        best = manager.latest_version_before(7, 150)
        assert best is not None and best.version == 1
        assert manager.latest_version_before(7, 50) is None
        assert manager.retained_lbas() == [7]

    def test_take_pending_validates_argument(self):
        with pytest.raises(ValueError):
            RetentionManager().take_pending(0)


class TestOffloadEngine:
    def test_drain_marks_records_offloaded_and_stores_remotely(self):
        manager = RetentionManager()
        engine = make_engine(manager, batch_pages=4)
        records = [stale(lpn) for lpn in range(10)]
        for record in records:
            manager.on_invalidate(record)
        shipped = engine.drain_all()
        assert shipped == 10
        assert all(record.offloaded for record in records)
        assert manager.pending_pages == 0
        assert engine.stats.pages_offloaded == 10
        assert engine.stats.page_capsules == 3  # 4 + 4 + 2
        assert engine.remote.stored_entries == 10

    def test_drain_respects_max_pages(self):
        manager = RetentionManager()
        engine = make_engine(manager, batch_pages=4)
        for lpn in range(10):
            manager.on_invalidate(stale(lpn))
        shipped = engine.drain(max_pages=5)
        assert shipped == 5
        assert manager.pending_pages == 5

    def test_compression_reduces_wire_bytes(self):
        manager = RetentionManager()
        engine = make_engine(manager)
        for lpn in range(8):
            record = stale(lpn)
            manager.on_invalidate(record)
        engine.drain_all()
        assert engine.stats.compressed_bytes < engine.stats.raw_bytes
        assert engine.stats.compression_ratio < 1.0

    def test_capsules_arrive_in_time_order(self):
        manager = RetentionManager()
        engine = make_engine(manager, batch_pages=2)
        for lpn in range(10):
            manager.on_invalidate(stale(lpn))
        engine.drain_all()
        assert engine.remote.verify_time_order()

    def test_reclaim_pressure_drains_through_manager(self):
        manager = RetentionManager()
        engine = make_engine(manager, batch_pages=4)
        manager.attach_offload_engine(engine)
        for lpn in range(6):
            manager.on_invalidate(stale(lpn))
        released = manager.reclaim_pressure(ftl=None, needed_pages=3)
        assert released >= 3
        assert manager.stats.reclaim_pressure_events == 1

    def test_fetch_pages_returns_future_completion(self):
        manager = RetentionManager()
        engine = make_engine(manager)
        completion = engine.fetch_pages(100)
        assert completion > engine.clock.now_us
        assert engine.fetch_pages(0) == float(engine.clock.now_us)
        with pytest.raises(ValueError):
            engine.fetch_pages(-1)

    def test_log_segment_offload(self):
        from repro.core.oplog import OperationLog
        from repro.ssd.device import HostOp, HostOpType

        manager = RetentionManager()
        engine = make_engine(manager)
        log = OperationLog(segment_entries=4)
        for index in range(10):
            log.on_host_op(
                HostOp(index, HostOpType.WRITE, index, 1, 100 + index, 5.0,
                       PageContent.synthetic(index, 4096), 1)
            )
        shipped = engine.offload_log_segments(log)
        assert shipped == 2
        assert all(segment.offloaded for segment in log.sealed_segments())
        assert engine.stats.log_entries_offloaded == 8
        # Second call ships nothing new.
        assert engine.offload_log_segments(log) == 0


class TestRSSDRetentionInvariant:
    def test_no_data_loss_under_heavy_overwrite(self):
        rssd = RSSD(config=RSSDConfig.tiny())
        for round_index in range(30):
            for lba in range(32):
                rssd.write(lba, PageContent.synthetic(round_index * 100 + lba, 4096))
        rssd.drain_offload_queue()
        assert rssd.data_loss_pages == 0
        # Every superseded version is accounted for either locally or remotely.
        assert rssd.retention.stats.stale_pages_seen > 0
        assert rssd.retained_pages_remote > 0
