"""Tests for the baseline defenses and the RSSD defense adapter."""

import pytest

from repro.api import provision_environment
from repro.attacks.classic import ClassicRansomware
from repro.defenses.base import SelectiveRetentionPolicy
from repro.defenses.flashguard import FlashGuardDefense
from repro.defenses.rblocker import RBlockerDefense
from repro.defenses.rssd_adapter import RSSDDefense
from repro.defenses.software import (
    CloudBackupDefense,
    CryptoDropDefense,
    JournalingFSDefense,
    ShieldFSDefense,
    UnveilDefense,
)
from repro.defenses.ssdinsider import SSDInsiderDefense
from repro.defenses.timessd import TimeSSDDefense
from repro.defenses.unprotected import UnprotectedSSD
from repro.sim import SimClock, US_PER_DAY, US_PER_HOUR
from repro.ssd.flash import PageContent
from repro.ssd.ftl import InvalidationCause, StalePage
from repro.ssd.geometry import SSDGeometry


def encrypted(tag):
    return PageContent.synthetic(tag, 4096, entropy=7.9, compress_ratio=0.99)


def normal(tag):
    return PageContent.synthetic(tag, 4096, entropy=3.4, compress_ratio=0.4)


def stale(lpn, cause=InvalidationCause.OVERWRITE, written=0, invalidated=0, version=1):
    return StalePage(
        lpn=lpn,
        ppn=lpn + 200,
        content=normal(lpn * 7 + version),
        written_us=written,
        invalidated_us=invalidated,
        cause=cause,
        version=version,
    )


class TestSelectiveRetentionPolicy:
    def test_retains_only_selected_records(self):
        clock = SimClock()
        policy = SelectiveRetentionPolicy(
            clock, should_retain=lambda r: r.cause is InvalidationCause.OVERWRITE
        )
        overwrite = stale(1)
        trim = stale(2, cause=InvalidationCause.TRIM)
        policy.on_invalidate(overwrite)
        policy.on_invalidate(trim)
        assert not policy.may_release(overwrite)
        assert policy.may_release(trim)
        assert policy.retained_count == 1

    def test_window_expiry_releases_old_records(self):
        clock = SimClock()
        policy = SelectiveRetentionPolicy(clock, should_retain=lambda r: True, window_us=1000)
        record = stale(1, invalidated=0)
        policy.on_invalidate(record)
        assert not policy.may_release(record)
        clock.advance(2000)
        assert policy.may_release(record)
        assert policy.lookup(1, before_us=10**9) is None

    def test_capacity_eviction_oldest_first(self):
        clock = SimClock()
        policy = SelectiveRetentionPolicy(clock, should_retain=lambda r: True, capacity_pages=2)
        records = [stale(lpn) for lpn in range(3)]
        for record in records:
            policy.on_invalidate(record)
        assert policy.may_release(records[0])
        assert not policy.may_release(records[2])
        assert policy.evicted_count == 1

    def test_pressure_behaviour_depends_on_pinning(self):
        clock = SimClock()
        pinning = SelectiveRetentionPolicy(clock, should_retain=lambda r: True, pin_under_pressure=True)
        yielding = SelectiveRetentionPolicy(clock, should_retain=lambda r: True, pin_under_pressure=False)
        for policy in (pinning, yielding):
            for lpn in range(4):
                policy.on_invalidate(stale(lpn))
        assert pinning.reclaim_pressure(None, 2) == 0
        assert yielding.reclaim_pressure(None, 2) == 2

    def test_lookup_returns_newest_version_before_timestamp(self):
        clock = SimClock()
        policy = SelectiveRetentionPolicy(clock, should_retain=lambda r: True)
        policy.on_invalidate(stale(5, written=100, version=1))
        policy.on_invalidate(stale(5, written=200, version=2))
        found = policy.lookup(5, before_us=250)
        assert found is not None
        earlier = policy.lookup(5, before_us=150)
        assert earlier is not None
        assert policy.lookup(5, before_us=50) is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SelectiveRetentionPolicy(SimClock(), lambda r: True, window_us=0)
        with pytest.raises(ValueError):
            SelectiveRetentionPolicy(SimClock(), lambda r: True, capacity_pages=0)


class TestSoftwareDefenses:
    def test_detection_only_defenses_never_recover(self):
        for cls in (UnveilDefense, CryptoDropDefense):
            defense = cls(geometry=SSDGeometry.tiny())
            defense.device.write(0, normal(1))
            defense.device.write(0, encrypted(2))
            assert defense.pre_attack_version(0, 10**12) is None

    def test_unveil_detects_encryption_burst(self):
        defense = UnveilDefense(geometry=SSDGeometry.tiny())
        for index in range(64):
            defense.device.write(index % 32, encrypted(index))
        assert defense.detect()

    def test_cryptodrop_requires_multiple_indicators(self):
        defense = CryptoDropDefense(geometry=SSDGeometry.tiny())
        for index in range(80):
            defense.device.read(index % 64)
            defense.device.write(index % 64, encrypted(index))
        assert defense.detect()

    def test_software_defenses_can_be_compromised(self):
        defense = UnveilDefense(geometry=SSDGeometry.tiny())
        assert defense.compromise() is True
        for index in range(64):
            defense.device.write(index % 32, encrypted(index))
        assert not defense.detect()

    def test_cloud_backup_restores_last_snapshot(self):
        defense = CloudBackupDefense(geometry=SSDGeometry.tiny(), snapshot_interval_us=US_PER_HOUR)
        clock = defense.clock
        defense.device.write(3, normal(1))
        clock.advance(2 * US_PER_HOUR)
        defense.device.write(4, normal(2))  # triggers a snapshot of the dirty set
        attack_start = clock.now_us + 10
        clock.advance(US_PER_HOUR)
        defense.device.write(3, encrypted(3))
        version = defense.pre_attack_version(3, attack_start)
        assert version is not None
        assert version.fingerprint == normal(1).fingerprint
        assert defense.snapshots_taken >= 1

    def test_cloud_backup_loses_unsnapshotted_changes(self):
        defense = CloudBackupDefense(geometry=SSDGeometry.tiny(), snapshot_interval_us=US_PER_DAY)
        defense.device.write(3, normal(1))
        # No snapshot has happened yet when the attack begins.
        assert defense.pre_attack_version(3, defense.clock.now_us + 1) is None

    def test_cloud_backup_compromise_wipes_remote_copies(self):
        defense = CloudBackupDefense(geometry=SSDGeometry.tiny(), snapshot_interval_us=1)
        defense.device.write(3, normal(1))
        defense.device.write(4, normal(2))
        defense.compromise()
        assert defense.pre_attack_version(3, 10**15) is None

    def test_shieldfs_window_expiry(self):
        defense = ShieldFSDefense(geometry=SSDGeometry.tiny(), window_us=US_PER_HOUR)
        defense.device.write(5, normal(1))
        attack_start = defense.clock.now_us + 5
        # Within the window the copy is available...
        assert defense.pre_attack_version(5, attack_start) is not None
        # ...but a patient attacker just waits it out.
        defense.clock.advance(3 * US_PER_HOUR)
        assert defense.pre_attack_version(5, attack_start) is None

    def test_journaling_fs_history_is_tiny(self):
        defense = JournalingFSDefense(geometry=SSDGeometry.tiny(), journal_pages=8)
        attack_start_refs = {}
        defense.device.write(1, normal(1))
        attack_start = defense.clock.now_us + 1
        # Enough later writes cycle the journal and push the old entry out.
        for index in range(20):
            defense.device.write(50 + index, normal(100 + index))
        assert defense.pre_attack_version(1, attack_start) is None


class TestHardwareDefenses:
    def test_flashguard_retains_read_then_overwritten_pages(self):
        defense = FlashGuardDefense(geometry=SSDGeometry.tiny())
        defense.device.write(7, normal(1))
        attack_start = defense.clock.now_us + 1
        defense.clock.advance(10)
        defense.device.read(7)            # ransomware reads the file
        defense.device.write(7, encrypted(2))  # ...and overwrites it
        version = defense.pre_attack_version(7, attack_start)
        assert version is not None
        assert version.fingerprint == normal(1).fingerprint

    def test_flashguard_does_not_retain_unread_overwrites(self):
        defense = FlashGuardDefense(geometry=SSDGeometry.tiny())
        defense.device.write(7, normal(1))
        attack_start = defense.clock.now_us + 1
        defense.clock.advance(10)
        defense.device.write(7, encrypted(2))  # overwrite without a prior read
        assert defense.pre_attack_version(7, attack_start) is None

    def test_flashguard_window_expiry_defeated_by_patience(self):
        defense = FlashGuardDefense(geometry=SSDGeometry.tiny())
        defense.device.write(7, normal(1))
        attack_start = defense.clock.now_us + 1
        defense.device.read(7)
        defense.device.write(7, encrypted(2))
        defense.clock.advance(int(defense.window_us) + 1)
        assert defense.pre_attack_version(7, attack_start) is None

    def test_timessd_retains_all_overwrites_within_window(self):
        defense = TimeSSDDefense(geometry=SSDGeometry.tiny())
        defense.device.write(9, normal(1))
        attack_start = defense.clock.now_us + 1
        defense.clock.advance(10)
        defense.device.write(9, encrypted(2))
        assert defense.pre_attack_version(9, attack_start) is not None

    def test_hardware_defenses_cannot_be_compromised(self):
        for cls in (FlashGuardDefense, TimeSSDDefense, SSDInsiderDefense, RBlockerDefense):
            defense = cls(geometry=SSDGeometry.tiny())
            assert defense.compromise() is False
            assert not defense.compromised

    def test_ssdinsider_detects_bursts_but_yields_under_pressure(self):
        defense = SSDInsiderDefense(geometry=SSDGeometry.tiny())
        for index in range(64):
            defense.device.read(index % 16)
            defense.device.write(index % 16, encrypted(index))
        assert defense.detect()
        assert defense.policy.pin_under_pressure is False

    def test_rblocker_counts_blocked_writes_after_detection(self):
        defense = RBlockerDefense(geometry=SSDGeometry.tiny())
        for index in range(200):
            defense.device.write(index % 16, encrypted(index))
        assert defense.detect()
        assert defense.blocked_writes >= 0

    def test_unprotected_ssd_has_no_recovery(self):
        defense = UnprotectedSSD(geometry=SSDGeometry.tiny())
        defense.device.write(0, normal(1))
        defense.device.write(0, encrypted(2))
        assert defense.pre_attack_version(0, 10**12) is None


class TestRSSDDefenseAdapter:
    def test_full_recovery_capability_and_forensics(self):
        defense = RSSDDefense(geometry=SSDGeometry.tiny())
        env = provision_environment(defense.device, victim_files=8, file_size_bytes=8192)
        outcome = ClassicRansomware().execute(env)
        recovered = 0
        for lba in outcome.victim_lbas:
            version = defense.pre_attack_version(lba, outcome.start_us)
            if version is not None and version.fingerprint == outcome.original_fingerprints.get(lba):
                recovered += 1
        assert recovered == len(outcome.victim_lbas)
        assert defense.detect()
        report = defense.forensic_report()
        assert report.chain_verified

    def test_adapter_reports_hardware_isolation(self):
        defense = RSSDDefense(geometry=SSDGeometry.tiny())
        assert defense.hardware_isolated
        assert defense.supports_forensics
        assert defense.compromise() is False
