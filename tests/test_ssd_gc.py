"""Tests for garbage collection policies and their retention interplay."""

import pytest

from repro.sim import SimClock
from repro.ssd.flash import FlashArray, PageContent, PageState
from repro.ssd.ftl import FTL, PassthroughRetention
from repro.ssd.gc import CostBenefitGC, GCResult, GreedyGC
from repro.ssd.geometry import SSDGeometry


def content(tag):
    return PageContent.synthetic(fingerprint=tag, length=4096)


def build_ftl(retention=None, gc_threshold=4):
    geometry = SSDGeometry.tiny()
    flash = FlashArray(geometry)
    return FTL(geometry, flash, SimClock(), retention_policy=retention, gc_threshold_blocks=gc_threshold)


def fill_with_overwrites(ftl, lpns=8, rounds=20):
    """Write a small working set repeatedly to build up stale pages."""
    tag = 0
    for _ in range(rounds):
        for lpn in range(lpns):
            tag += 1
            ftl.write(lpn, content(tag))


class PinningRetention(PassthroughRetention):
    """Retention policy that never lets stale data go (worst case for GC)."""

    def may_release(self, record):
        return False

    def reclaim_pressure(self, ftl, needed_pages):
        return 0


class TestGCResult:
    def test_merge_accumulates(self):
        first = GCResult(blocks_erased=1, valid_pages_relocated=2, stale_pages_released=3)
        second = GCResult(blocks_erased=2, stale_pages_preserved=4, stalled=True)
        first.merge(second)
        assert first.blocks_erased == 3
        assert first.valid_pages_relocated == 2
        assert first.stale_pages_preserved == 4
        assert first.stalled
        assert first.pages_relocated == 6


class TestGreedyGC:
    def test_reclaims_space_from_overwrites(self):
        ftl = build_ftl()
        fill_with_overwrites(ftl)
        gc = GreedyGC()
        free_before = ftl.allocator.free_blocks
        result = gc.collect(ftl, force=True)
        assert result.blocks_erased >= 1
        assert result.stale_pages_released > 0
        assert ftl.allocator.free_blocks >= free_before

    def test_valid_pages_survive_gc(self):
        ftl = build_ftl()
        fill_with_overwrites(ftl, lpns=8, rounds=10)
        live_before = {lpn: ftl.read(lpn).fingerprint for lpn in range(8)}
        GreedyGC().collect(ftl, force=True)
        for lpn, fingerprint in live_before.items():
            assert ftl.read(lpn).fingerprint == fingerprint

    def test_victim_selection_prefers_more_releasable(self):
        ftl = build_ftl()
        fill_with_overwrites(ftl)
        gc = GreedyGC()
        victim = gc.select_victim(ftl)
        assert victim is not None
        releasable, _, _ = gc._block_accounting(ftl, victim)
        assert releasable > 0

    def test_pinned_stale_pages_are_preserved_not_destroyed(self):
        ftl = build_ftl(retention=PinningRetention())
        fill_with_overwrites(ftl, lpns=4, rounds=6)
        stale_before = ftl.stale_pages
        result = GreedyGC().collect(ftl, force=True)
        # Nothing releasable anywhere: GC must not destroy pinned data.
        assert result.stale_pages_released == 0
        assert ftl.stale_pages == stale_before

    def test_gc_reports_stall_when_nothing_reclaimable(self):
        ftl = build_ftl(retention=PinningRetention(), gc_threshold=31)
        fill_with_overwrites(ftl, lpns=4, rounds=4)
        result = GreedyGC().collect(ftl)
        assert result.stalled or result.blocks_erased == 0


class TestCostBenefitGC:
    def test_scores_zero_for_fully_valid_block(self):
        ftl = build_ftl()
        for lpn in range(16):
            ftl.write(lpn, content(lpn + 1))
        gc = CostBenefitGC()
        block = ftl.flash.block(0)
        assert gc.score_victim(ftl, block) == 0.0

    def test_reclaims_space_like_greedy(self):
        ftl = build_ftl()
        fill_with_overwrites(ftl)
        result = CostBenefitGC().collect(ftl, force=True)
        assert result.blocks_erased >= 1

    def test_age_weight_must_be_non_negative(self):
        with pytest.raises(ValueError):
            CostBenefitGC(age_weight=-1.0)


class TestParameterValidation:
    def test_max_blocks_per_pass_validated(self):
        with pytest.raises(ValueError):
            GreedyGC(max_blocks_per_pass=0)

    def test_both_gc_classes_accept_the_same_knobs(self):
        """Regression: CostBenefitGC used to drop ``victim_scan_width``."""
        for gc_class in (GreedyGC, CostBenefitGC):
            gc = gc_class(max_blocks_per_pass=3, victim_scan_width=2)
            assert gc.max_blocks_per_pass == 3
            assert gc.victim_scan_width == 2
            with pytest.raises(ValueError):
                gc_class(victim_scan_width=0)

    def test_cost_benefit_narrow_scan_still_collects(self):
        ftl = build_ftl()
        fill_with_overwrites(ftl)
        result = CostBenefitGC(victim_scan_width=1).collect(ftl, force=True)
        assert result.blocks_erased >= 1


class TestBlockAccountingIndex:
    """The per-block stale index must agree with a full page walk."""

    def test_accounting_matches_page_walk(self):
        ftl = build_ftl()
        fill_with_overwrites(ftl, lpns=12, rounds=12)
        gc = GreedyGC()
        for block in ftl.reclaimable_blocks():
            releasable, must_preserve, valid = gc._block_accounting(ftl, block)
            walk_valid = block.count_state(PageState.VALID)
            walk_invalid = block.count_state(PageState.INVALID)
            assert valid == walk_valid
            assert releasable + must_preserve == walk_invalid

    def test_reclaimable_blocks_tracks_invalidation_and_erase(self):
        ftl = build_ftl()
        assert ftl.reclaimable_blocks() == []
        fill_with_overwrites(ftl, lpns=8, rounds=8)
        dirty_before = {block.block_index for block in ftl.reclaimable_blocks()}
        assert dirty_before
        GreedyGC().collect(ftl, force=True)
        for block in ftl.reclaimable_blocks():
            assert block.invalid_pages > 0
