"""Tests for entropy classification used by detectors."""

import pytest

from repro.crypto.entropy import EntropyClassifier, EntropyWindow
from repro.ssd.flash import PageContent


def encrypted_page() -> PageContent:
    data = bytes((i * 193 + 71) % 256 for i in range(4096))
    return PageContent.from_bytes(data)


def text_page() -> PageContent:
    return PageContent.from_bytes(b"plain old document text, nothing to see " * 100)


class TestEntropyClassifier:
    def test_detects_encrypted_payload(self):
        classifier = EntropyClassifier()
        verdict = classifier.classify(encrypted_page())
        assert verdict.looks_encrypted
        assert verdict.entropy > 7.2

    def test_plain_text_not_flagged(self):
        classifier = EntropyClassifier()
        assert not classifier.classify(text_page()).looks_encrypted

    def test_delta_computed_against_previous(self):
        classifier = EntropyClassifier()
        verdict = classifier.classify(encrypted_page(), previous=text_page())
        assert verdict.delta_vs_previous is not None
        assert verdict.delta_vs_previous > 2.0
        assert verdict.looks_encrypted

    def test_descriptor_only_pages_use_declared_entropy(self):
        classifier = EntropyClassifier()
        synthetic = PageContent.synthetic(1, 4096, entropy=7.9)
        assert classifier.classify(synthetic).looks_encrypted

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EntropyClassifier(encrypted_threshold=9.0)
        with pytest.raises(ValueError):
            EntropyClassifier(jump_threshold=-1.0)


class TestEntropyJumpThreshold:
    """The configured ``jump_threshold`` must actually gate the verdict
    (the pre-fix classifier compared ``delta >= 0`` instead)."""

    @staticmethod
    def synthetic(entropy: float) -> PageContent:
        return PageContent.synthetic(1, 4096, entropy=entropy)

    def test_sub_threshold_jump_is_not_flagged(self):
        classifier = EntropyClassifier(jump_threshold=2.0)
        verdict = classifier.classify(
            self.synthetic(6.9), previous=self.synthetic(5.5)
        )
        assert verdict.delta_vs_previous == pytest.approx(1.4)
        assert not verdict.looks_encrypted

    def test_supra_threshold_jump_is_flagged_below_absolute_line(self):
        classifier = EntropyClassifier(jump_threshold=2.0)
        verdict = classifier.classify(
            self.synthetic(6.9), previous=self.synthetic(4.0)
        )
        assert verdict.delta_vs_previous == pytest.approx(2.9)
        assert verdict.looks_encrypted

    @pytest.mark.parametrize("previous_entropy", [0.5, 2.0, 3.5, 5.0, 6.5, 7.9])
    @pytest.mark.parametrize("entropy", [0.5, 2.0, 3.5, 5.0, 6.5, 6.9, 7.5, 8.0])
    def test_verdict_property_over_the_grid(self, entropy, previous_entropy):
        """Property: with a previous page, a write is flagged iff the
        absolute trigger fires without an entropy drop, or the rise
        meets the jump threshold."""
        classifier = EntropyClassifier()
        delta = entropy - previous_entropy
        expected = (entropy >= classifier.encrypted_threshold and delta >= 0) or (
            delta >= classifier.jump_threshold
        )
        verdict = classifier.classify(
            self.synthetic(entropy), previous=self.synthetic(previous_entropy)
        )
        assert verdict.looks_encrypted == expected
        assert verdict.delta_vs_previous == pytest.approx(delta)

    def test_custom_jump_threshold_is_respected(self):
        loose = EntropyClassifier(jump_threshold=0.5)
        strict = EntropyClassifier(jump_threshold=3.0)
        new, old = self.synthetic(6.0), self.synthetic(5.0)
        assert loose.classify(new, previous=old).looks_encrypted
        assert not strict.classify(new, previous=old).looks_encrypted

    def test_entropy_drop_never_flags(self):
        classifier = EntropyClassifier()
        verdict = classifier.classify(
            self.synthetic(7.9), previous=self.synthetic(7.95)
        )
        assert not verdict.looks_encrypted


class TestEntropyWindow:
    def test_empty_window_not_suspicious(self):
        assert not EntropyWindow().is_suspicious()

    def test_suspicious_when_dominated_by_high_entropy(self):
        window = EntropyWindow(window_size=16)
        for _ in range(16):
            window.observe(7.9)
        assert window.is_suspicious()
        assert window.high_entropy_fraction() == 1.0

    def test_not_suspicious_when_diluted_by_normal_writes(self):
        window = EntropyWindow(window_size=16)
        for index in range(32):
            window.observe(7.9 if index % 4 == 0 else 3.5)
        assert not window.is_suspicious()

    def test_requires_enough_samples(self):
        window = EntropyWindow(window_size=64)
        for _ in range(10):
            window.observe(8.0)
        assert not window.is_suspicious()

    def test_mean_and_count(self):
        window = EntropyWindow(window_size=4)
        for value in (2.0, 4.0, 6.0, 8.0):
            window.observe(value)
        assert window.count == 4
        assert window.mean == pytest.approx(5.0)

    def test_sliding_behaviour_forgets_old_values(self):
        window = EntropyWindow(window_size=4)
        for _ in range(4):
            window.observe(8.0)
        for _ in range(4):
            window.observe(1.0)
        assert window.high_entropy_fraction() == 0.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            EntropyWindow(window_size=0)
        with pytest.raises(ValueError):
            EntropyWindow().observe(9.5)
