"""Differential property suite: array kernel vs the dict-semantics oracle.

The struct-of-arrays :class:`repro.ssd.kernel.SimKernel` replaced the
original ``Dict[int, PageMetadata]`` mapping and per-object page state.
These properties replay hypothesis-generated op streams (writes, reads,
trims and forced GC passes, in arbitrary interleavings) against the
kernel-backed FTL and against a tiny pure-dict reference model with the
pre-refactor semantics, then require the two to agree on every logical
observable: live mapping, fingerprints, per-LPN version counters,
mapped-page counts and the retained stale history.

A second property pins the scalar-vs-batched differential: the same op
stream applied through the per-op methods and through the run-based
batch surfaces must leave *bit-identical kernel state* (including
physical placement, because both paths share the allocator and chunk at
the same block boundaries).
"""

from collections import defaultdict

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim import SimClock
from repro.ssd.flash import FlashArray, PageContent
from repro.ssd.ftl import FTL, PassthroughRetention
from repro.ssd.gc import GreedyGC
from repro.ssd.geometry import SSDGeometry
from repro.ssd.kernel import PAGE_INVALID, PAGE_VALID

#: Narrow LPN window so streams revisit addresses (overwrites + trims).
LPN_SPACE = 48
MAX_RUN = 6


class DictFTLOracle:
    """Pre-refactor reference semantics kept as plain dicts."""

    def __init__(self):
        self.mapping = {}
        self.versions = defaultdict(int)
        self.stale = defaultdict(list)

    def write(self, lpn, fingerprint):
        if lpn in self.mapping:
            self.stale[lpn].append(self.mapping[lpn])
        self.versions[lpn] += 1
        self.mapping[lpn] = fingerprint

    def trim(self, lpn):
        if lpn in self.mapping:
            self.stale[lpn].append(self.mapping.pop(lpn))

    def read(self, lpn):
        return self.mapping.get(lpn)


class RetainEverything(PassthroughRetention):
    """RSSD-style policy: GC may relocate stale pages but never drop them."""

    def may_release(self, record):
        return False

    def reclaim_pressure(self, ftl, needed_pages):
        return 0


def build_ftl(retention=None):
    geometry = SSDGeometry.tiny()
    return FTL(
        geometry,
        FlashArray(geometry),
        SimClock(),
        retention_policy=retention,
        gc_threshold_blocks=4,
    )


def content_for(tag):
    return PageContent.synthetic(fingerprint=tag, length=4096)


ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.integers(min_value=0, max_value=LPN_SPACE - MAX_RUN),
            st.integers(min_value=1, max_value=MAX_RUN),
        ),
        st.tuples(
            st.just("trim"),
            st.integers(min_value=0, max_value=LPN_SPACE - MAX_RUN),
            st.integers(min_value=1, max_value=MAX_RUN),
        ),
        st.tuples(
            st.just("read"),
            st.integers(min_value=0, max_value=LPN_SPACE - MAX_RUN),
            st.integers(min_value=1, max_value=MAX_RUN),
        ),
        st.tuples(st.just("gc"), st.just(0), st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


def apply_scalar(ftl, gc, op, lpn, npages, tagger):
    """Apply one op through the per-op (pre-refactor shaped) surfaces."""
    if op == "write":
        for offset in range(npages):
            ftl.write(lpn + offset, content_for(tagger()))
    elif op == "trim":
        for offset in range(npages):
            ftl.trim(lpn + offset)
    elif op == "read":
        return [
            c.fingerprint if c is not None else None
            for c in (ftl.read(lpn + offset) for offset in range(npages))
        ]
    else:
        gc.collect(ftl, force=True)
    return None


def apply_batched(ftl, gc, op, lpn, npages, tagger):
    """Apply one op through the kernel's run-based batch surfaces."""
    if op == "write":
        ftl.write_run(lpn, [content_for(tagger()) for _ in range(npages)])
    elif op == "trim":
        ftl.trim_run(lpn, npages)
    elif op == "read":
        return [
            c.fingerprint if c is not None else None
            for c in ftl.read_run(lpn, npages)
        ]
    else:
        gc.collect(ftl, force=True)
    return None


def make_tagger():
    counter = [0]

    def tagger():
        counter[0] += 1
        return counter[0]

    return tagger


def assert_matches_oracle(ftl, oracle, check_stale):
    for lpn in range(LPN_SPACE):
        snapshot = ftl.lookup(lpn)
        expected = oracle.read(lpn)
        if expected is None:
            assert snapshot is None
        else:
            assert snapshot is not None
            assert ftl.read(lpn).fingerprint == expected
            assert snapshot.version == oracle.versions[lpn]
    assert ftl.mapped_pages == len(oracle.mapping)
    if check_stale:
        retained = defaultdict(list)
        for record in ftl._stale.values():
            assert not record.released
            retained[record.lpn].append(record.content.fingerprint)
        for lpn in range(LPN_SPACE):
            assert sorted(retained.get(lpn, [])) == sorted(oracle.stale.get(lpn, []))


@given(ops=ops_strategy)
@settings(max_examples=40, deadline=None)
def test_kernel_ftl_matches_dict_oracle_with_full_retention(ops):
    """Any op interleaving leaves kernel state equal to the dict model.

    With a retain-everything policy GC may move pages but can never
    destroy data, so the oracle's retained history must survive exactly.
    """
    ftl = build_ftl(retention=RetainEverything())
    gc = GreedyGC(max_blocks_per_pass=2)
    oracle = DictFTLOracle()
    tag = make_tagger()
    oracle_tag = make_tagger()
    for op, lpn, npages in ops:
        got = apply_batched(ftl, gc, op, lpn, npages, tag)
        if op == "write":
            for offset in range(npages):
                oracle.write(lpn + offset, oracle_tag())
        elif op == "trim":
            for offset in range(npages):
                oracle.trim(lpn + offset)
        elif op == "read":
            expected = [oracle.read(lpn + offset) for offset in range(npages)]
            assert got == expected
    assert_matches_oracle(ftl, oracle, check_stale=True)


@given(ops=ops_strategy)
@settings(max_examples=40, deadline=None)
def test_kernel_ftl_matches_dict_oracle_with_passthrough_gc(ops):
    """With releasable stale data, the live mapping still matches exactly."""
    ftl = build_ftl()
    gc = GreedyGC(max_blocks_per_pass=2)
    oracle = DictFTLOracle()
    tag = make_tagger()
    oracle_tag = make_tagger()
    for op, lpn, npages in ops:
        apply_batched(ftl, gc, op, lpn, npages, tag)
        if op == "write":
            for offset in range(npages):
                oracle.write(lpn + offset, oracle_tag())
        elif op == "trim":
            for offset in range(npages):
                oracle.trim(lpn + offset)
    assert_matches_oracle(ftl, oracle, check_stale=False)


@given(ops=ops_strategy)
@settings(max_examples=40, deadline=None)
def test_scalar_and_batched_paths_produce_identical_kernel_state(ops):
    """Per-op and run-based surfaces leave bit-identical kernel columns."""
    scalar_ftl = build_ftl(retention=RetainEverything())
    batched_ftl = build_ftl(retention=RetainEverything())
    scalar_gc = GreedyGC(max_blocks_per_pass=2)
    batched_gc = GreedyGC(max_blocks_per_pass=2)
    scalar_tag = make_tagger()
    batched_tag = make_tagger()
    for op, lpn, npages in ops:
        scalar_got = apply_scalar(scalar_ftl, scalar_gc, op, lpn, npages, scalar_tag)
        batched_got = apply_batched(batched_ftl, batched_gc, op, lpn, npages, batched_tag)
        assert scalar_got == batched_got
    a, b = scalar_ftl.kernel, batched_ftl.kernel
    assert np.array_equal(a.map_ppn, b.map_ppn)
    assert np.array_equal(a.map_version, b.map_version)
    assert np.array_equal(a.page_state, b.page_state)
    assert np.array_equal(a.page_lpn, b.page_lpn)
    assert np.array_equal(a.block_valid, b.block_valid)
    assert np.array_equal(a.block_invalid, b.block_invalid)
    assert np.array_equal(a.block_erase, b.block_erase)
    assert a.mapped_count == b.mapped_count
    fingerprints_a = [c.fingerprint if c is not None else None for c in a.page_content]
    fingerprints_b = [c.fingerprint if c is not None else None for c in b.page_content]
    assert fingerprints_a == fingerprints_b


@given(ops=ops_strategy)
@settings(max_examples=25, deadline=None)
def test_kernel_counters_stay_internally_consistent(ops):
    """Block counters, state column and mapping agree after any stream."""
    ftl = build_ftl(retention=RetainEverything())
    gc = GreedyGC(max_blocks_per_pass=2)
    tag = make_tagger()
    for op, lpn, npages in ops:
        apply_batched(ftl, gc, op, lpn, npages, tag)
    kernel = ftl.kernel
    ppb = ftl.geometry.pages_per_block
    for block in range(ftl.geometry.total_blocks):
        window = kernel.page_state[block * ppb : (block + 1) * ppb]
        assert int(kernel.block_valid[block]) == int((window == PAGE_VALID).sum())
        assert int(kernel.block_invalid[block]) == int((window == PAGE_INVALID).sum())
    free, valid, invalid = kernel.state_counts()
    assert free + valid + invalid == ftl.geometry.total_pages
    assert valid == int(kernel.block_valid.sum())
