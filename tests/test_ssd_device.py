"""Tests for the SSD block device."""

import pytest

from repro.sim import SimClock
from repro.ssd.device import SSD, SSDBuilder, HostOp, HostOpType
from repro.ssd.errors import OutOfRangeError
from repro.ssd.flash import PageContent
from repro.ssd.geometry import SSDGeometry
from repro.ssd.latency import LatencyModel


class RecordingObserver:
    def __init__(self):
        self.ops = []

    def on_host_op(self, op: HostOp) -> None:
        self.ops.append(op)


class TestReadWrite:
    def test_write_then_read_bytes_roundtrip(self, ssd):
        ssd.write(0, b"hello device")
        assert ssd.read(0).startswith(b"hello device")

    def test_unwritten_pages_read_as_zeros(self, ssd):
        assert ssd.read(5) == b"\x00" * ssd.page_size

    def test_multi_page_write_spans_consecutive_lbas(self, ssd):
        payload = bytes(range(256)) * 33  # > one page
        ssd.write(10, payload)
        assert ssd.read_content(10) is not None
        assert ssd.read_content(11) is not None
        data = ssd.read(10, 3)
        assert data[: len(payload)] == payload

    def test_write_page_content_descriptor(self, ssd, content_factory):
        ssd.write(3, content_factory(77))
        assert ssd.read_content(3).fingerprint == 77
        # Descriptor-only pages read back as zeros (no payload carried).
        assert ssd.read(3) == b"\x00" * ssd.page_size

    def test_write_sequence_of_contents(self, ssd, content_factory):
        ssd.write(0, [content_factory(1), content_factory(2)])
        assert ssd.read_content(0).fingerprint == 1
        assert ssd.read_content(1).fingerprint == 2

    def test_empty_write_rejected(self, ssd):
        with pytest.raises(ValueError):
            ssd.write(0, b"")
        with pytest.raises(ValueError):
            ssd.write(0, [])

    def test_out_of_range_rejected(self, ssd):
        with pytest.raises(OutOfRangeError):
            ssd.read(ssd.capacity_pages)
        with pytest.raises(OutOfRangeError):
            ssd.write(ssd.capacity_pages - 1, b"x" * (2 * ssd.page_size))

    def test_overwrite_returns_latest_data(self, ssd):
        ssd.write(2, b"version one")
        ssd.write(2, b"version two")
        assert ssd.read(2).startswith(b"version two")


class TestTrim:
    def test_trim_unmaps_pages(self, ssd):
        ssd.write(4, b"to be trimmed")
        records = ssd.trim(4)
        assert len(records) == 1
        assert ssd.read(4) == b"\x00" * ssd.page_size

    def test_trim_unmapped_returns_no_records(self, ssd):
        assert ssd.trim(8, 2) == []

    def test_eager_trim_gc_erases_stale_data(self, tiny_geometry):
        ssd = SSD(geometry=tiny_geometry, eager_trim_gc=True)
        # Fill more than one block so the trimmed pages live in a closed
        # block that GC is allowed to reclaim.
        for lba in range(20):
            ssd.write(lba, b"secret data %d" % lba)
        ssd.trim(0, 16)
        # With commodity trim handling the stale pages are gone after the
        # trim-triggered GC pass -- the lever the trimming attack pulls.
        assert ssd.ftl.stale_pages == 0

    def test_trim_without_eager_gc_keeps_stale_until_gc(self, tiny_geometry):
        ssd = SSD(geometry=tiny_geometry, eager_trim_gc=False)
        for lba in range(20):
            ssd.write(lba, b"secret data %d" % lba)
        ssd.trim(0, 16)
        assert ssd.ftl.stale_pages == 16


class TestFlushAndMetrics:
    def test_flush_reports_destaged_pages(self, ssd):
        for lba in range(8):
            ssd.write(lba, b"x")
        destaged = ssd.flush()
        assert destaged >= 0
        assert ssd.metrics.host_flushes == 1

    def test_metrics_count_host_operations(self, ssd):
        ssd.write(0, b"a")
        ssd.write(1, b"b")
        ssd.read(0)
        ssd.trim(1)
        assert ssd.metrics.host_writes == 2
        assert ssd.metrics.host_reads == 1
        assert ssd.metrics.host_trims == 1
        assert ssd.metrics.host_pages_written == 2

    def test_write_amplification_at_least_one_under_pressure(self, tiny_geometry):
        ssd = SSD(geometry=tiny_geometry)
        # Overwrite a small working set many times to force GC.
        for round_index in range(40):
            for lba in range(16):
                ssd.write(lba, PageContent.synthetic(round_index * 100 + lba, 4096))
        assert ssd.metrics.write_amplification >= 1.0
        assert ssd.metrics.gc_invocations > 0

    def test_latency_recorded_per_op(self, ssd):
        ssd.write(0, b"payload")
        ssd.read(0)
        assert ssd.metrics.latency["write"].count == 1
        assert ssd.metrics.latency["read"].count == 1
        assert ssd.metrics.latency["write"].mean_us > 0


class TestClockAdvancement:
    def test_operations_advance_the_clock(self, tiny_geometry):
        clock = SimClock()
        ssd = SSD(geometry=tiny_geometry, clock=clock)
        ssd.write(0, b"data")
        after_write = clock.now_us
        assert after_write > 0
        ssd.read(0)
        assert clock.now_us > after_write

    def test_op_overhead_added_to_latency(self, tiny_geometry):
        plain = SSD(geometry=tiny_geometry)
        plain.write(0, b"data")
        base_latency = plain.metrics.latency["write"].mean_us

        with_overhead = SSD(geometry=tiny_geometry)
        with_overhead.add_op_overhead(HostOpType.WRITE, 25.0)
        with_overhead.write(0, b"data")
        assert with_overhead.metrics.latency["write"].mean_us == pytest.approx(
            base_latency + 25.0
        )

    def test_negative_overhead_rejected(self, ssd):
        with pytest.raises(ValueError):
            ssd.add_op_overhead(HostOpType.WRITE, -1.0)


class TestObservers:
    def test_observers_see_all_ops_in_order(self, ssd):
        observer = RecordingObserver()
        ssd.add_observer(observer)
        ssd.write(0, b"a")
        ssd.read(0)
        ssd.trim(0)
        assert [op.op_type for op in observer.ops] == [
            HostOpType.WRITE,
            HostOpType.READ,
            HostOpType.TRIM,
        ]
        assert [op.sequence for op in observer.ops] == sorted(
            op.sequence for op in observer.ops
        )

    def test_observer_sees_stream_ids(self, ssd):
        observer = RecordingObserver()
        ssd.add_observer(observer)
        ssd.write(0, b"a", stream_id=7)
        assert observer.ops[0].stream_id == 7

    def test_remove_observer(self, ssd):
        observer = RecordingObserver()
        ssd.add_observer(observer)
        ssd.remove_observer(observer)
        ssd.write(0, b"a")
        assert observer.ops == []


class TestBuilder:
    def test_builder_produces_configured_device(self):
        clock = SimClock()
        ssd = (
            SSDBuilder()
            .with_geometry(SSDGeometry.tiny())
            .with_latency(LatencyModel.fast_nvme())
            .with_clock(clock)
            .with_gc_threshold(5)
            .with_eager_trim_gc(False)
            .build()
        )
        assert ssd.geometry.total_pages == 512
        assert ssd.clock is clock
        assert ssd.ftl.gc_threshold_blocks == 5
        assert ssd.eager_trim_gc is False
