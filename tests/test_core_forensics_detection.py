"""Tests for post-attack analysis (evidence chain) and detection."""

import pytest

from repro.api import provision_environment
from repro.attacks.classic import ClassicRansomware
from repro.attacks.timing_attack import TimingAttack
from repro.core.config import RSSDConfig
from repro.core.detection import LocalDetector, RemoteDetector
from repro.core.rssd import RSSD
from repro.ssd.device import HostOp, HostOpType
from repro.ssd.flash import PageContent


def encrypted_content(tag):
    return PageContent.synthetic(fingerprint=tag, length=4096, entropy=7.9, compress_ratio=0.99)


def normal_content(tag):
    return PageContent.synthetic(fingerprint=tag, length=4096, entropy=3.5, compress_ratio=0.4)


class TestPostAttackAnalyzer:
    def test_evidence_chain_verifies_and_identifies_attacker(self):
        rssd = RSSD(config=RSSDConfig.tiny())
        env = provision_environment(rssd, victim_files=12, file_size_bytes=8192)
        outcome = ClassicRansomware().execute(env)
        rssd.drain_offload_queue()
        report = rssd.investigate()
        assert report.chain_verified
        assert report.tampered_at is None
        assert env.attacker_stream in report.suspected_streams
        assert env.user_stream not in report.suspected_streams
        assert report.total_entries == rssd.oplog.total_entries
        assert report.attack_window_us is not None
        start, end = report.attack_window_us
        assert outcome.start_us <= start <= end <= outcome.end_us + 1

    def test_backtracking_reconstructs_page_history(self):
        rssd = RSSD(config=RSSDConfig.tiny())
        env = provision_environment(rssd, victim_files=6, file_size_bytes=4096)
        victim = env.fs.list_files()[0]
        lba = env.fs.file_lbas(victim)[0]
        ClassicRansomware().execute(env)
        analyzer = rssd.analyzer()
        history = analyzer.backtrack_lba(lba)
        ops = [entry.op_type for entry in history]
        # The page was written when the file was created, read by the
        # attacker, and overwritten with ciphertext -- in that order.
        assert HostOpType.WRITE in ops
        assert HostOpType.READ in ops
        write_entries = [e for e in history if e.op_type is HostOpType.WRITE]
        assert write_entries[-1].entropy > 7.0

    def test_last_clean_timestamp(self):
        rssd = RSSD(config=RSSDConfig.tiny())
        env = provision_environment(rssd, victim_files=6, file_size_bytes=4096)
        victim = env.fs.list_files()[0]
        lba = env.fs.file_lbas(victim)[0]
        ClassicRansomware().execute(env)
        analyzer = rssd.analyzer()
        suspects = analyzer.suspect_streams()
        clean_ts = analyzer.last_clean_timestamp(lba, suspects)
        assert clean_ts is not None
        # Recovering to that timestamp restores the original file content.
        report = rssd.recover_to(clean_ts, lbas=env.fs.file_lbas(victim))
        assert report.recovered_everything

    def test_reconstruction_time_grows_with_log_size(self):
        small = RSSD(config=RSSDConfig.tiny())
        for index in range(50):
            small.write(index % 32, normal_content(index))
        small_report = small.investigate()

        large = RSSD(config=RSSDConfig.tiny())
        for index in range(600):
            large.write(index % 32, normal_content(index))
        large_report = large.investigate()
        assert large_report.reconstruction_us > small_report.reconstruction_us

    def test_profiles_capture_stream_behaviour(self):
        rssd = RSSD(config=RSSDConfig.tiny())
        for index in range(20):
            rssd.write(index, normal_content(index), stream_id=1)
        for index in range(20):
            rssd.read(index, stream_id=7)
            rssd.write(index, encrypted_content(1000 + index), stream_id=7)
        profiles = rssd.analyzer().profile_streams()
        assert profiles[7].high_entropy_fraction > 0.9
        assert profiles[7].read_then_overwrite > 0
        assert profiles[1].high_entropy_fraction < 0.1

    def test_profiles_count_entropy_jumps_across_streams(self):
        # Mid-entropy overwrites of user text: below the absolute line,
        # but a clear jump over the replaced data.
        rssd = RSSD(config=RSSDConfig.tiny())
        for index in range(12):
            rssd.write(index, normal_content(index), stream_id=1)
        for index in range(12):
            rssd.write(
                index,
                PageContent.synthetic(500 + index, 4096, entropy=6.9),
                stream_id=7,
            )
        profiles = rssd.analyzer().profile_streams()
        assert profiles[7].entropy_jump_writes == 12
        assert profiles[7].jump_fraction == 1.0
        assert profiles[1].entropy_jump_writes == 0

    def test_benign_discard_trims_are_not_suspected(self):
        # A stream trimming pages nobody read recently is ordinary
        # delete/discard traffic, not a wipe: it must not be suspected.
        rssd = RSSD(config=RSSDConfig.tiny())
        for index in range(24):
            rssd.write(index, normal_content(index), stream_id=1)
        for index in range(24):
            rssd.trim(index, stream_id=1)
        analyzer = rssd.analyzer()
        assert analyzer.suspect_streams() == []

    def test_read_then_trim_wipe_is_suspected(self):
        # The same trims *after the data was read back* carry the
        # read-then-destroy signature of a trim wipe.
        rssd = RSSD(config=RSSDConfig.tiny())
        for index in range(24):
            rssd.write(index, normal_content(index), stream_id=1)
        for index in range(24):
            rssd.read(index, stream_id=1)
        for index in range(24):
            rssd.trim(index, stream_id=7)
        analyzer = rssd.analyzer()
        profiles = analyzer.profile_streams()
        assert profiles[7].trims_of_read_data == 24
        assert analyzer.suspect_streams() == [7]


class TestLocalDetector:
    def test_detects_burst_of_encrypted_overwrites(self):
        detector = LocalDetector(window_size=32)
        for index in range(64):
            detector.on_host_op(
                HostOp(index, HostOpType.WRITE, index, 1, index * 100, 5.0,
                       encrypted_content(index), stream_id=9)
            )
        report = detector.report()
        assert report.detected
        assert report.detection_time_us is not None
        assert 9 in report.suspected_streams

    def test_ignores_normal_traffic(self):
        detector = LocalDetector(window_size=32)
        for index in range(200):
            detector.on_host_op(
                HostOp(index, HostOpType.WRITE, index, 1, index * 100, 5.0,
                       normal_content(index), stream_id=1)
            )
        assert not detector.report().detected

    def test_paced_attack_evades_window_detector(self):
        detector = LocalDetector(window_size=32, min_writes_per_second=50.0)
        # One encrypted write every 10 seconds: far below the rate threshold.
        for index in range(64):
            detector.on_host_op(
                HostOp(index, HostOpType.WRITE, index, 1, index * 10_000_000, 5.0,
                       encrypted_content(index), stream_id=9)
            )
        assert not detector.report().detected

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LocalDetector(high_entropy_fraction=0.0)
        with pytest.raises(ValueError):
            LocalDetector(min_writes_per_second=0.0)


class TestRemoteDetector:
    def test_remote_detector_catches_timing_attack(self):
        rssd = RSSD(config=RSSDConfig.tiny())
        env = provision_environment(rssd, victim_files=16, file_size_bytes=8192)
        TimingAttack(camouflage_writes_per_batch=8).execute(env)
        rssd.drain_offload_queue()
        local = rssd.local_detector.report()
        remote = rssd.detect()
        assert not local.detected  # the whole point of the timing attack
        assert remote.detected
        assert env.attacker_stream in remote.suspected_streams

    def test_remote_detector_clean_workload_no_false_positive(self):
        rssd = RSSD(config=RSSDConfig.tiny())
        for index in range(300):
            rssd.write(index % 64, normal_content(index), stream_id=1)
        report = rssd.detect()
        assert not report.detected
        assert report.suspected_streams == []

    def test_remote_detector_without_analyzer(self):
        rssd = RSSD(config=RSSDConfig.tiny())
        detector = RemoteDetector(rssd.oplog, analyzer=None)
        assert not detector.analyze().detected
