"""Golden-run regression suite for the detection-quality (ROC) pipeline.

Mirrors ``test_campaign_golden``: the tiny evasion grid's ROC artifact
is committed under ``tests/golden/`` and every run must reproduce it
bit-for-bit -- confusion counts, TPR/FPR points, AUCs and operating
points -- across every execution backend.  Regenerate intentionally with
``pytest tests/test_roc_golden.py --update-golden``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import run_roc
from repro.campaign import CampaignGrid, RocArtifact
from repro.campaign.roc import RocPoint, auc_from_points

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_ROC = GOLDEN_DIR / "roc_tiny.json"


def _fresh_tiny_artifact(backend: str = "sequential", jobs: int = 0) -> RocArtifact:
    return run_roc(CampaignGrid.evasion_tiny(), backend=backend, jobs=jobs)


def test_tiny_roc_reproduces_golden_artifact(update_golden):
    artifact = _fresh_tiny_artifact()
    text = artifact.to_json()
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        GOLDEN_ROC.write_text(text, encoding="utf-8")
        pytest.skip(f"golden ROC artifact rewritten: {GOLDEN_ROC}")
    assert GOLDEN_ROC.exists(), (
        "golden ROC artifact missing; run pytest tests/test_roc_golden.py "
        "--update-golden to create it"
    )
    stored = GOLDEN_ROC.read_text(encoding="utf-8")
    if text != stored:
        differences = artifact.diff(RocArtifact.from_json(stored))
        pytest.fail(
            "ROC artifact diverged from tests/golden/roc_tiny.json "
            "(run --update-golden if intentional):\n" + "\n".join(differences)
        )


@pytest.mark.parametrize("backend,jobs", [("thread", 2), ("process", 2)])
def test_roc_artifact_is_bit_identical_across_backends(backend, jobs):
    sequential = _fresh_tiny_artifact().to_json()
    parallel = _fresh_tiny_artifact(backend=backend, jobs=jobs).to_json()
    assert parallel == sequential


def test_roc_artifact_is_order_independent():
    grid = CampaignGrid.evasion_tiny()
    forward = run_roc(grid, specs=grid.cells())
    backward = run_roc(grid, specs=list(reversed(grid.cells())))
    assert forward.to_json() == backward.to_json()


def test_golden_roc_artifact_shape_meets_acceptance():
    """>= 4 evasive attacks x >= 3 defenses x every detector, with sane
    rates and the headline result pinned: mimicry evades the absolute
    entropy detector at its default threshold but the jump detector
    catches it."""
    artifact = RocArtifact.load(str(GOLDEN_ROC))
    grid = CampaignGrid.evasion_tiny()
    assert artifact.campaign_seed == grid.seed
    defenses = {curve.defense for curve in artifact.curves}
    attacks = {curve.attack for curve in artifact.curves}
    detectors = {curve.detector for curve in artifact.curves}
    assert len(defenses) >= 3
    assert len(attacks) >= 4
    assert detectors == {"entropy", "jump", "window"}
    assert artifact.curve_keys == sorted(artifact.curve_keys)
    for curve in artifact.curves:
        assert 0.0 <= curve.auc <= 1.0
        assert curve.samples > 0
        for point in curve.points:
            assert 0.0 <= point.true_positive_rate <= 1.0
            assert 0.0 <= point.false_positive_rate <= 1.0
            total = (
                point.true_positives
                + point.false_positives
                + point.true_negatives
                + point.false_negatives
            )
            assert total == curve.samples
    mimicry_entropy = artifact.curve(
        "LocalSSD/entropy-mimicry/office-edit/tiny#entropy"
    )
    mimicry_jump = artifact.curve("LocalSSD/entropy-mimicry/office-edit/tiny#jump")
    assert mimicry_entropy.tpr_at_default == 0.0, "mimicry must evade the absolute detector"
    assert mimicry_jump.tpr_at_default > 0.9, "the fixed jump detector must catch mimicry"
    assert mimicry_jump.fpr_at_default < 0.05


def test_golden_roc_pins_rssd_remote_detection():
    """The deployed window detectors never fire on the evasion grid;
    RSSD's offloaded full-history detector flags every cell."""
    artifact = RocArtifact.load(str(GOLDEN_ROC))
    for curve in artifact.curves:
        if curve.defense == "RSSD":
            assert curve.defense_detected
        else:
            assert not curve.defense_detected


def test_auc_helper_handles_degenerate_curves():
    perfect = [
        RocPoint(0.0, 1, 0, 1, 0, 1.0, 0.0, 1.0),
    ]
    assert auc_from_points(perfect) == 1.0
    assert auc_from_points([]) == 0.5  # just the (0,0)-(1,1) diagonal


def test_roc_diff_is_field_precise():
    artifact = RocArtifact.load(str(GOLDEN_ROC))
    assert artifact.diff(RocArtifact.from_json(artifact.to_json())) == []
    tweaked = RocArtifact.from_json(artifact.to_json())
    curve = tweaked.curves[0]
    tweaked.curves[0] = type(curve).from_dict({**curve.to_dict(), "auc": 0.123})
    differences = tweaked.diff(artifact)
    assert len(differences) == 1
    assert "auc" in differences[0]


def test_roc_artifact_refuses_newer_versions():
    artifact = RocArtifact.load(str(GOLDEN_ROC))
    data = artifact.to_dict()
    data["version"] = 999
    with pytest.raises(ValueError):
        RocArtifact.from_dict(data)


@pytest.mark.slow
def test_full_evasion_sweep_runs_and_separates_strength_variants():
    """Nightly: the full evasion grid (strength variants included) runs
    clean, and stronger evasion shows strictly lower jump-detector TPR
    at the default threshold than the light variant."""
    artifact = run_roc(CampaignGrid.evasion_full(), backend="process", jobs=0)
    attacks = {curve.attack for curve in artifact.curves}
    assert "entropy-mimicry-strong" in attacks
    light = artifact.curve("LocalSSD/entropy-mimicry/office-edit/tiny#jump")
    strong = artifact.curve("LocalSSD/entropy-mimicry-strong/office-edit/tiny#jump")
    assert strong.tpr_at_default < light.tpr_at_default
