"""Campaign engine tests: grids, seeding, backends, artifacts.

The determinism properties here are the contract the golden-run suite
relies on: the same ``(campaign_seed, grid)`` must produce identical
``CellResult`` records whatever backend executes the cells and whatever
order they run in.
"""

from __future__ import annotations

import random

import pytest

from repro.campaign import (
    CampaignArtifact,
    CampaignGrid,
    CellSpec,
    ExperimentRunner,
    derive_seed,
    run_campaign,
    run_cell,
)
from repro.campaign.grid import filter_specs
from repro.campaign.runner import BACKENDS


def small_grid(**overrides) -> CampaignGrid:
    """A 4-cell grid that keeps the multi-backend tests fast."""
    params = dict(
        defenses=["LocalSSD", "SSDInsider"],
        attacks=["classic", "timing-attack"],
        workloads=["office-edit"],
        device_configs=["tiny"],
        victim_files=4,
        file_size_bytes=4096,
        user_activity_hours=2.0,
        seed=13,
    )
    params.update(overrides)
    return CampaignGrid(**params)


class TestSeeding:
    def test_derivation_is_stable_across_platforms(self):
        # Pinned value: SHA-256 based, so it must never change. If this
        # fails, every golden artifact silently re-seeds.
        assert derive_seed(71, "a/b/c", "env") == derive_seed(71, "a/b/c", "env")
        assert derive_seed(1, "x") == 1684744602868703426

    def test_distinct_parts_give_distinct_streams(self):
        seeds = {
            derive_seed(7, key, purpose)
            for key in ("a", "b", "c")
            for purpose in ("env", "workload", "attack")
        }
        assert len(seeds) == 9

    def test_cells_embed_derived_seeds(self):
        grid = small_grid()
        specs = grid.cells()
        by_key = {spec.cell_key: spec for spec in specs}
        spec = by_key["LocalSSD/classic/office-edit/tiny"]
        assert spec.env_seed == derive_seed(13, spec.cell_key, "env")
        assert spec.attack_seed == derive_seed(13, spec.cell_key, "attack")
        # A different campaign seed re-seeds every cell.
        respec = small_grid(seed=14).cells()[0]
        assert respec.env_seed != specs[0].env_seed


class TestGrid:
    def test_expansion_is_the_cartesian_product(self):
        grid = small_grid(workloads=["office-edit", "idle"])
        specs = grid.cells()
        assert len(specs) == 2 * 2 * 2
        assert len({spec.cell_key for spec in specs}) == len(specs)

    def test_unknown_names_rejected_eagerly(self):
        with pytest.raises(KeyError, match="NotADefense"):
            small_grid(defenses=["NotADefense"])
        with pytest.raises(KeyError, match="attacks"):
            small_grid(attacks=["not-an-attack"])

    def test_filter_substring_and_glob(self):
        specs = small_grid().cells()
        assert len(filter_specs(specs, ["SSDInsider"])) == 2
        assert len(filter_specs(specs, ["*/classic/*"])) == 2
        assert len(filter_specs(specs, ["SSDInsider", "*/classic/*"])) == 3
        assert filter_specs(specs, []) == specs

    def test_grid_filter_passthrough(self):
        assert len(small_grid().cells(["timing-attack"])) == 2


class TestExperimentRunner:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ExperimentRunner(backend="gpu")

    def test_map_preserves_input_order(self):
        runner = ExperimentRunner(backend="thread", jobs=4)
        items = list(range(20))
        assert runner.map(lambda x: x * x, items) == [x * x for x in items]

    def test_empty_input(self):
        assert ExperimentRunner(backend="process", jobs=2).map(abs, []) == []


class TestDeterminism:
    """Same (campaign_seed, grid) => identical results, any backend/order."""

    @pytest.fixture(scope="class")
    def sequential_artifact(self):
        return run_campaign(small_grid(), backend="sequential")

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "sequential"])
    def test_backends_agree_bit_for_bit(self, sequential_artifact, backend):
        artifact = run_campaign(small_grid(), backend=backend, jobs=2)
        assert artifact.to_json() == sequential_artifact.to_json()
        assert artifact.diff(sequential_artifact) == []

    def test_execution_order_does_not_matter(self, sequential_artifact):
        grid = small_grid()
        shuffled = grid.cells()
        random.Random(99).shuffle(shuffled)
        artifact = run_campaign(grid, backend="sequential", specs=shuffled)
        assert artifact.to_json() == sequential_artifact.to_json()

    def test_repeated_run_in_same_process_is_identical(self, sequential_artifact):
        # Guards against leaked module-level random state between cells.
        again = run_campaign(small_grid(), backend="sequential")
        assert again.to_json() == sequential_artifact.to_json()

    def test_single_cell_rerun_matches_campaign(self, sequential_artifact):
        spec = small_grid().cells()[0]
        alone = run_cell(spec)
        assert alone == sequential_artifact.cell(spec.cell_key)


class TestArtifact:
    def test_round_trip(self):
        artifact = run_campaign(small_grid())
        clone = CampaignArtifact.from_json(artifact.to_json())
        assert clone.to_json() == artifact.to_json()
        assert clone.diff(artifact) == []

    def test_cells_sorted_by_key_regardless_of_insertion(self):
        artifact = run_campaign(small_grid())
        reversed_cells = list(reversed(artifact.cells))
        rebuilt = CampaignArtifact(
            campaign_seed=artifact.campaign_seed,
            grid=artifact.grid,
            cells=reversed_cells,
        )
        assert rebuilt.cell_keys == sorted(rebuilt.cell_keys)

    def test_newer_version_rejected(self):
        artifact = run_campaign(small_grid())
        data = artifact.to_dict()
        data["version"] = 999
        with pytest.raises(ValueError, match="newer"):
            CampaignArtifact.from_dict(data)

    def test_unknown_cell_lookup(self):
        artifact = run_campaign(small_grid())
        with pytest.raises(KeyError):
            artifact.cell("nope/nope/nope/nope")

    def test_diff_reports_missing_and_extra_cells(self):
        artifact = run_campaign(small_grid())
        truncated = CampaignArtifact(
            campaign_seed=artifact.campaign_seed,
            grid=artifact.grid,
            cells=artifact.cells[1:],
        )
        differences = truncated.diff(artifact)
        assert any(d.startswith("missing cell:") for d in differences)
        differences = artifact.diff(truncated)
        assert any(d.startswith("extra cell:") for d in differences)


class TestImportLayering:
    def test_low_level_packages_import_without_campaign(self):
        """repro.host / repro.attacks must import in a fresh process.

        Regression test for an import cycle: workloads.fleet importing
        the campaign runner at module level re-entered a partially
        initialized repro.attacks.base whenever the host layer was
        imported first.
        """
        import subprocess
        import sys

        for module in ("repro.host", "repro.attacks", "repro.workloads"):
            proc = subprocess.run(
                [sys.executable, "-c", f"import {module}"],
                capture_output=True,
                text=True,
            )
            assert proc.returncode == 0, f"import {module} failed:\n{proc.stderr}"


class TestCliGridValidation:
    def test_unknown_defense_fails_fast(self):
        from repro.cli import main

        with pytest.raises(KeyError, match="NotADefense"):
            main(["campaign", "--defenses", "NotADefense"])

    def test_zero_victim_files_rejected(self):
        from repro.cli import main

        with pytest.raises(ValueError, match="victim_files"):
            main(["campaign", "--victim-files", "0"])


class TestEnvironmentRngBinding:
    @pytest.mark.parametrize(
        "attack_name", ["classic", "gc-attack", "timing-attack", "trimming-attack"]
    )
    def test_seedless_attacks_bind_the_environment_rng(self, attack_name):
        """seed=None defers every random draw to env.rng (no module random)."""
        from repro.api import provision_environment
        from repro.campaign.registries import ATTACKS
        from repro.defenses.unprotected import UnprotectedSSD
        from repro.ssd.geometry import SSDGeometry

        def run_once():
            defense = UnprotectedSSD(geometry=SSDGeometry.tiny())
            env = provision_environment(
                defense.device, victim_files=4, file_size_bytes=4096, seed=5
            )
            attack = ATTACKS[attack_name](None)  # seed=None: defer to env.rng
            assert attack.rng is None
            return attack.execute(env)

        first, second = run_once(), run_once()
        assert first.victim_lbas == second.victim_lbas
        assert first.pages_encrypted == second.pages_encrypted
        assert first.junk_pages_written == second.junk_pages_written


class TestScenarioSemantics:
    def test_rng_is_threaded_not_module_level(self):
        """Cells must not consume (or depend on) module-level random state."""
        random.seed(1)
        first = run_cell(small_grid().cells()[0])
        state_after = random.getstate()
        random.seed(2)
        second = run_cell(small_grid().cells()[0])
        assert first == second
        random.seed(1)
        run_cell(small_grid().cells()[0])
        assert random.getstate() == state_after == random.getstate()

    def test_detection_latency_only_when_detected(self):
        artifact = run_campaign(small_grid(victim_files=12, file_size_bytes=8192))
        for cell in artifact.cells:
            if cell.detected:
                assert cell.detection_latency_us is not None
                assert 0 <= cell.detection_latency_us
            else:
                assert cell.detection_latency_us is None

    def test_oplog_hash_present_only_for_logging_devices(self):
        grid = small_grid(defenses=["LocalSSD", "RSSD"], attacks=["classic"])
        artifact = run_campaign(grid)
        assert artifact.cell("RSSD/classic/office-edit/tiny").oplog_hash
        assert artifact.cell("LocalSSD/classic/office-edit/tiny").oplog_hash is None

    def test_idle_workload_runs(self):
        grid = small_grid(defenses=["LocalSSD"], attacks=["classic"], workloads=["idle"])
        artifact = run_campaign(grid)
        (cell,) = artifact.cells
        assert cell.workload == "idle"
        assert cell.victim_pages > 0


@pytest.mark.slow
def test_full_default_grid_matches_matrix_shape():
    """The full Table-1 grid through the engine, in parallel.

    Nightly-scale check: the campaign engine's parallel run must agree
    with the capability matrix's qualitative shape (the same assertions
    the paper's Table 1 makes).
    """
    artifact = run_campaign(CampaignGrid(), backend="thread", jobs=2)
    assert len(artifact.cells) == 11 * 4

    def fraction(defense, attack):
        return artifact.cell(f"{defense}/{attack}/office-edit/tiny").recovery_fraction

    for attack in ("gc-attack", "timing-attack", "trimming-attack"):
        assert fraction("RSSD", attack) >= 0.99
        assert fraction("LocalSSD", attack) < 0.05
    for defense in ("FlashGuard", "TimeSSD"):
        assert fraction(defense, "gc-attack") >= 0.99
        assert fraction(defense, "timing-attack") < 0.99
        assert fraction(defense, "trimming-attack") < 0.99
    assert fraction("CloudBackup", "timing-attack") >= 0.5
