"""The legacy entry points: still working, warning exactly once."""

from __future__ import annotations

import warnings

import pytest

from repro import _deprecation
from repro.api import RSSD, RSSDConfig
from repro.campaign.grid import CampaignGrid


@pytest.fixture(autouse=True)
def fresh_warning_state():
    """Each test sees a process that has not warned yet."""
    _deprecation.reset_warned()
    yield
    _deprecation.reset_warned()


def collect_deprecations(fn):
    """Run ``fn`` and return the DeprecationWarnings it emitted."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = fn()
    return result, [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestBuildEnvironmentShim:
    def test_still_works_and_names_the_replacement(self):
        from repro.attacks.base import build_environment

        rssd = RSSD(config=RSSDConfig.tiny())
        env, deprecations = collect_deprecations(
            lambda: build_environment(rssd, victim_files=3, file_size_bytes=4096)
        )
        assert env.fs.file_count == 3
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert "build_environment" in message
        assert "repro.api.provision_environment" in message

    def test_warns_exactly_once_per_process(self):
        from repro.attacks.base import build_environment

        rssd = RSSD(config=RSSDConfig.tiny())
        _, first = collect_deprecations(lambda: build_environment(rssd, victim_files=2))
        _, second = collect_deprecations(lambda: build_environment(rssd, victim_files=2))
        assert len(first) == 1 and second == []

    def test_provision_environment_never_warns(self):
        from repro.api import provision_environment

        rssd = RSSD(config=RSSDConfig.tiny())
        _, deprecations = collect_deprecations(
            lambda: provision_environment(rssd, victim_files=2)
        )
        assert deprecations == []


class TestFleetRunnerShim:
    def test_direct_construction_warns_once_and_works(self):
        from repro.workloads.fleet import FleetRunner

        runner, first = collect_deprecations(lambda: FleetRunner())
        assert runner.batched and runner.factories
        _, second = collect_deprecations(lambda: FleetRunner())
        assert len(first) == 1 and second == []
        message = str(first[0].message)
        assert "FleetRunner" in message and "repro.api.run_fleet" in message

    def test_run_fleet_never_warns(self):
        from repro.api import run_fleet
        from repro.workloads.synthetic import BurstyWorkload

        trace = BurstyWorkload(capacity_pages=64, seed=3).generate(50)
        report, deprecations = collect_deprecations(
            lambda: run_fleet(trace, factories=None, mode="mirror")
        )
        assert deprecations == []
        assert report.total_records == 50 * len(report.devices)

    def test_run_fleet_rejects_unknown_modes(self):
        from repro.api import run_fleet

        with pytest.raises(ValueError, match="unknown fleet mode"):
            run_fleet([], mode="broadcast")


class TestRunRocShim:
    def test_campaign_run_roc_warns_once_and_delegates(self):
        from repro.campaign.roc import run_roc

        grid = CampaignGrid.evasion_tiny()
        artifact, first = collect_deprecations(lambda: run_roc(grid, specs=[]))
        assert artifact.campaign_seed == grid.seed and artifact.curves == []
        _, second = collect_deprecations(lambda: run_roc(grid, specs=[]))
        assert len(first) == 1 and second == []
        message = str(first[0].message)
        assert "repro.campaign.roc.run_roc" in message
        assert "repro.api.run_roc" in message

    def test_api_run_roc_never_warns(self):
        from repro.api import run_roc

        grid = CampaignGrid.evasion_tiny()
        artifact, deprecations = collect_deprecations(lambda: run_roc(grid, specs=[]))
        assert deprecations == [] and artifact.curves == []


class TestWarnOncePlumbing:
    def test_distinct_pairs_warn_independently(self):
        def both():
            _deprecation.warn_once("old.a", "new.a")
            _deprecation.warn_once("old.b", "new.b")
            _deprecation.warn_once("old.a", "new.a")

        _, deprecations = collect_deprecations(both)
        assert len(deprecations) == 2

    def test_warn_once_reports_whether_it_warned(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert _deprecation.warn_once("x", "y") is True
            assert _deprecation.warn_once("x", "y") is False
