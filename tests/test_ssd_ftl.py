"""Tests for the flash translation layer."""

import pytest

from repro.sim import SimClock
from repro.ssd.errors import CapacityExhaustedError, OutOfRangeError
from repro.ssd.flash import FlashArray, PageContent, PageState
from repro.ssd.ftl import (
    FTL,
    BlockAllocator,
    InvalidationCause,
    PassthroughRetention,
    StalePage,
)
from repro.ssd.geometry import SSDGeometry


def make_ftl(retention=None, gc_threshold=2):
    geometry = SSDGeometry.tiny()
    clock = SimClock()
    flash = FlashArray(geometry)
    ftl = FTL(geometry, flash, clock, retention_policy=retention, gc_threshold_blocks=gc_threshold)
    return ftl


def content(tag, entropy=3.0):
    return PageContent.synthetic(fingerprint=tag, length=4096, entropy=entropy)


class RecordingRetention(PassthroughRetention):
    """Passthrough policy that remembers every invalidation it saw."""

    def __init__(self):
        self.invalidated = []

    def on_invalidate(self, record):
        self.invalidated.append(record)


class TestMappingBasics:
    def test_unmapped_read_returns_none(self):
        ftl = make_ftl()
        assert ftl.read(0) is None

    def test_write_then_read(self):
        ftl = make_ftl()
        ftl.write(3, content(1))
        assert ftl.read(3).fingerprint == 1
        assert ftl.mapped_pages == 1

    def test_overwrite_updates_mapping_and_version(self):
        ftl = make_ftl()
        first = ftl.write(3, content(1))
        second = ftl.write(3, content(2))
        assert ftl.read(3).fingerprint == 2
        assert second.version == first.version + 1
        assert ftl.mapped_pages == 1

    def test_out_of_range_lpn_rejected(self):
        ftl = make_ftl()
        with pytest.raises(OutOfRangeError):
            ftl.write(ftl.geometry.exported_pages, content(1))
        with pytest.raises(OutOfRangeError):
            ftl.read(-1)

    def test_writes_to_distinct_lpns_use_distinct_ppns(self):
        ftl = make_ftl()
        first = ftl.write(0, content(1))
        second = ftl.write(1, content(2))
        assert first.ppn != second.ppn


class TestInvalidationAndStaleTracking:
    def test_overwrite_creates_stale_record(self):
        policy = RecordingRetention()
        ftl = make_ftl(retention=policy)
        ftl.write(5, content(1))
        ftl.write(5, content(2))
        assert ftl.stale_pages == 1
        assert len(policy.invalidated) == 1
        record = policy.invalidated[0]
        assert record.lpn == 5
        assert record.cause is InvalidationCause.OVERWRITE
        assert record.content.fingerprint == 1

    def test_trim_creates_stale_record_with_trim_cause(self):
        policy = RecordingRetention()
        ftl = make_ftl(retention=policy)
        ftl.write(5, content(1))
        record = ftl.trim(5)
        assert record is not None
        assert record.cause is InvalidationCause.TRIM
        assert ftl.read(5) is None
        assert ftl.mapped_pages == 0

    def test_trim_of_unmapped_lpn_returns_none(self):
        ftl = make_ftl()
        assert ftl.trim(7) is None

    def test_stale_versions_ordered_for_lpn(self):
        ftl = make_ftl()
        for version in range(1, 5):
            ftl.write(2, content(version))
        versions = ftl.stale_for_lpn(2)
        assert [record.content.fingerprint for record in versions] == [1, 2, 3]
        assert [record.version for record in versions] == [1, 2, 3]

    def test_stale_data_remains_readable_on_flash(self):
        ftl = make_ftl()
        ftl.write(2, content(1))
        ftl.write(2, content(2))
        record = ftl.stale_for_lpn(2)[0]
        assert ftl.flash.read(record.ppn).fingerprint == 1


class TestRelocationAndRelease:
    def test_relocate_valid_page_updates_mapping(self):
        ftl = make_ftl()
        meta = ftl.write(1, content(1))
        old_ppn = meta.ppn
        new_ppn = ftl.relocate_valid_page(old_ppn)
        assert ftl.lookup(1).ppn == new_ppn
        assert ftl.read(1).fingerprint == 1
        assert ftl.flash.page(old_ppn).state is PageState.INVALID

    def test_relocate_stale_page_keeps_record_and_marks_copy_invalid(self):
        ftl = make_ftl()
        ftl.write(1, content(1))
        ftl.write(1, content(2))
        record = ftl.stale_for_lpn(1)[0]
        old_ppn = record.ppn
        new_ppn = ftl.relocate_stale_page(record)
        assert record.ppn == new_ppn != old_ppn
        assert record.relocations == 1
        assert ftl.stale_record_at(new_ppn) is record
        assert ftl.stale_record_at(old_ppn) is None
        # The relocated copy is history, not live data.
        assert ftl.flash.page(new_ppn).state is PageState.INVALID
        assert ftl.flash.read(new_ppn).fingerprint == 1

    def test_release_stale_page_removes_tracking(self):
        ftl = make_ftl()
        ftl.write(1, content(1))
        ftl.write(1, content(2))
        record = ftl.stale_for_lpn(1)[0]
        ftl.release_stale_page(record)
        assert record.released
        assert ftl.stale_pages == 0

    def test_drop_stale_record_keeps_page_invalid(self):
        ftl = make_ftl()
        ftl.write(1, content(1))
        ftl.write(1, content(2))
        record = ftl.stale_for_lpn(1)[0]
        ftl.drop_stale_record(record)
        assert ftl.stale_pages == 0
        assert not record.released


class TestBlockAllocator:
    def test_allocates_lowest_erase_count_first(self):
        geometry = SSDGeometry.tiny()
        flash = FlashArray(geometry)
        flash.block(0).erase_count = 5
        allocator = BlockAllocator(flash, gc_reserve_blocks=0)
        first = allocator.allocate()
        assert first != 0

    def test_wear_injected_after_construction_steers_allocation(self):
        """Heap entries are lazily re-keyed against live erase counts."""
        flash = FlashArray(SSDGeometry.tiny())
        allocator = BlockAllocator(flash, gc_reserve_blocks=0)
        flash.set_erase_count(0, 60)
        assert allocator.allocate() != 0

    def test_release_returns_block_to_pool(self):
        flash = FlashArray(SSDGeometry.tiny())
        allocator = BlockAllocator(flash, gc_reserve_blocks=0)
        block = allocator.allocate()
        before = allocator.free_blocks
        allocator.release(block)
        assert allocator.free_blocks == before + 1

    def test_double_release_rejected(self):
        flash = FlashArray(SSDGeometry.tiny())
        allocator = BlockAllocator(flash, gc_reserve_blocks=0)
        block = allocator.allocate()
        allocator.release(block)
        with pytest.raises(ValueError):
            allocator.release(block)

    def test_gc_reserve_blocks_host_allocations(self):
        flash = FlashArray(SSDGeometry.tiny())
        allocator = BlockAllocator(flash, gc_reserve_blocks=2)
        for _ in range(flash.geometry.total_blocks - 2):
            allocator.allocate()
        with pytest.raises(CapacityExhaustedError):
            allocator.allocate()
        # GC can still dig into the reserve.
        assert allocator.allocate(for_gc=True) is not None

    def test_exhaustion_raises(self):
        flash = FlashArray(SSDGeometry.tiny())
        allocator = BlockAllocator(flash, gc_reserve_blocks=0)
        for _ in range(flash.geometry.total_blocks):
            allocator.allocate()
        with pytest.raises(CapacityExhaustedError):
            allocator.allocate(for_gc=True)


class TestFreeAccounting:
    def test_free_pages_decrease_with_writes(self):
        ftl = make_ftl()
        before = ftl.free_pages
        ftl.write(0, content(1))
        assert ftl.free_pages == before - 1

    def test_needs_gc_when_pool_drains(self):
        ftl = make_ftl(gc_threshold=31)
        assert not ftl.needs_gc()  # 32 free blocks, threshold 31
        ftl.write(0, content(1))  # opening the first host block drops the pool to 31
        assert ftl.needs_gc()

    def test_closed_blocks_excludes_open_and_free(self):
        ftl = make_ftl()
        for lpn in range(20):
            ftl.write(lpn, content(lpn))
        closed = ftl.closed_blocks()
        assert all(block.next_program_offset > 0 for block in closed)
