"""Trim ranges crossing block boundaries while GC is mid-victim-scan.

The kernel refactor snapshots a victim's page states straight off the
struct-of-arrays state column at the start of the reclaim scan.  These
tests pin the interleaving the snapshot must survive: a trim that spans
an erase-block boundary lands between victim *selection* and the
reclaim scan (or between passes of one collection), flipping pages of
the victim and of its neighbour from VALID to INVALID with fresh stale
records attached.
"""

import pytest

from repro.sim import SimClock
from repro.ssd.device import SSD
from repro.ssd.flash import FlashArray, PageContent
from repro.ssd.ftl import FTL, InvalidationCause, PassthroughRetention
from repro.ssd.gc import GreedyGC
from repro.ssd.geometry import SSDGeometry
from repro.ssd.kernel import PAGE_INVALID, PAGE_VALID


def content(tag):
    return PageContent.synthetic(fingerprint=tag, length=4096)


def build_ftl(retention=None, gc_threshold=4):
    geometry = SSDGeometry.tiny()
    flash = FlashArray(geometry)
    return FTL(
        geometry,
        flash,
        SimClock(),
        retention_policy=retention,
        gc_threshold_blocks=gc_threshold,
    )


class PreservingRetention(PassthroughRetention):
    """Pins every stale page, RSSD-style, so GC must relocate them."""

    def may_release(self, record):
        return False

    def reclaim_pressure(self, ftl, needed_pages):
        return 0


def assert_kernel_consistent(ftl):
    """Block counters and the mapping column agree with the state column."""
    kernel = ftl.kernel
    ppb = ftl.geometry.pages_per_block
    for block in range(ftl.geometry.total_blocks):
        window = kernel.page_state[block * ppb : (block + 1) * ppb]
        assert int(kernel.block_valid[block]) == int((window == PAGE_VALID).sum())
        assert int(kernel.block_invalid[block]) == int((window == PAGE_INVALID).sum())
    mapped_lpns = (kernel.map_ppn >= 0).nonzero()[0].tolist()
    assert len(mapped_lpns) == kernel.mapped_count
    for lpn in mapped_lpns:
        ppn = int(kernel.map_ppn[lpn])
        assert int(kernel.page_state[ppn]) == PAGE_VALID
        assert int(kernel.page_lpn[ppn]) == lpn
    for ppn, record in ftl._stale.items():
        assert int(kernel.page_state[ppn]) == PAGE_INVALID
        assert record.ppn == ppn


def fill_sequential(ftl, npages, start_tag=1):
    """Write ``npages`` LPNs once each; sequential fill packs them by block."""
    for lpn in range(npages):
        ftl.write(lpn, content(start_tag + lpn))


class TestTrimDuringVictimScan:
    def test_trim_crossing_blocks_between_selection_and_reclaim(self):
        ftl = build_ftl()
        ppb = ftl.geometry.pages_per_block
        fill_sequential(ftl, 3 * ppb)
        # Overwrites make the first host block the clear victim.
        for lpn in range(6):
            ftl.write(lpn, content(1000 + lpn))

        gc = GreedyGC()
        victim = gc.select_victim(ftl)
        assert victim is not None
        victim_lpns = {
            lpn
            for lpn in range(3 * ppb)
            if ftl.geometry.ppn_to_block(ftl.lookup(lpn).ppn) == victim.block_index
        }
        assert victim_lpns, "victim should hold live pages from the sequential fill"

        # The trim lands after selection but before the reclaim scan and
        # crosses from the victim into the next block's LPN range.
        boundary = max(lpn for lpn in victim_lpns if lpn + 1 not in victim_lpns)
        trim_start, trim_pages = boundary - 3, 8
        trimmed = set(range(trim_start, trim_start + trim_pages))
        assert trimmed & victim_lpns and trimmed - victim_lpns, (
            "trim range must straddle the victim's block boundary"
        )
        survivors = {
            lpn: ftl.read(lpn).fingerprint
            for lpn in range(3 * ppb)
            if lpn not in trimmed
        }
        ftl.trim_run(trim_start, trim_pages)

        result = gc._reclaim_block(ftl, victim)

        assert result.blocks_erased == 1
        # Overwritten and trimmed-inside-victim pages are all releasable
        # under passthrough retention; trimmed pages of the neighbour
        # block must be left alone.
        assert result.stale_pages_released >= 6 + len(trimmed & victim_lpns)
        assert victim.valid_count == 0 and victim.is_erased
        for lpn in trimmed:
            assert ftl.lookup(lpn) is None
        for lpn, fingerprint in survivors.items():
            assert ftl.read(lpn).fingerprint == fingerprint
        outside = trimmed - victim_lpns
        recorded = {
            record.lpn
            for record in ftl._stale.values()
            if record.cause is InvalidationCause.TRIM
        }
        assert outside <= recorded
        assert_kernel_consistent(ftl)

    def test_preserving_policy_relocates_trimmed_pages_from_victim(self):
        ftl = build_ftl(retention=PreservingRetention())
        ppb = ftl.geometry.pages_per_block
        fill_sequential(ftl, 2 * ppb)

        gc = GreedyGC()
        # Trim the tail of the first block plus the head of the second,
        # then force a scan of the first block.
        ftl.trim_run(ppb - 4, 8)
        victim = ftl.flash.block(ftl.geometry.ppn_to_block(0))
        assert victim.invalid_count > 0
        result = gc._reclaim_block(ftl, victim)

        # Nothing may be destroyed: every trimmed page in the victim is
        # relocated with its record intact.
        assert result.stale_pages_released == 0
        assert result.stale_pages_preserved >= 4
        trimmed_records = [
            record
            for record in ftl._stale.values()
            if record.cause is InvalidationCause.TRIM
        ]
        assert len(trimmed_records) == 8
        for record in trimmed_records:
            assert ftl.geometry.ppn_to_block(record.ppn) != victim.block_index
            assert ftl.stale_record_at(record.ppn) is record
        assert_kernel_consistent(ftl)


class TestDeviceTrimRangeWithEagerGC:
    def test_trim_range_spanning_blocks_triggers_gc_and_stays_consistent(self):
        device = SSD(geometry=SSDGeometry.tiny(), eager_trim_gc=True)
        ppb = device.geometry.pages_per_block
        capacity = device.capacity_pages
        # Drive the free pool down toward the GC threshold so the
        # trim-triggered collection has real work queued up.
        tag = 0
        for round_index in range(3):
            for lba in range(0, capacity - ppb, ppb):
                tag += 1
                device.write_batch(
                    lba, [content(tag * 10_000 + i) for i in range(ppb)]
                )
        gc_before = device.metrics.gc_invocations

        # One trim crossing three block-sized strides of the LBA space.
        trim_lba, trim_pages = ppb // 2, 3 * ppb
        device.trim_range(trim_lba, trim_pages)

        assert device.metrics.gc_invocations > gc_before
        assert device.metrics.host_pages_trimmed >= trim_pages
        for lba in range(trim_lba, trim_lba + trim_pages):
            assert device.ftl.lookup(lba) is None
        # A survivor on each side of the trimmed range still reads back.
        for lba in (0, trim_lba + trim_pages + 1):
            assert device.ftl.lookup(lba) is not None
        assert_kernel_consistent(device.ftl)

    def test_interleaved_trim_write_gc_rounds_keep_accounting_exact(self):
        device = SSD(geometry=SSDGeometry.tiny(), eager_trim_gc=True)
        ppb = device.geometry.pages_per_block
        capacity = device.capacity_pages
        tag = 0
        for round_index in range(6):
            for lba in range(0, capacity - ppb, ppb // 2):
                tag += 1
                device.write_batch(
                    lba, [content(tag * 10_000 + i) for i in range(ppb // 2)]
                )
            # Trim a block-boundary-crossing window that moves each round.
            window = (round_index * (ppb + 3)) % (capacity - 2 * ppb)
            device.trim_range(window, ppb + 5)
            assert_kernel_consistent(device.ftl)
        assert device.metrics.gc_invocations > 0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
