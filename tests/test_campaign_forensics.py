"""Campaign-level forensic metrics, integrity surfacing, and the golden report.

Three guarantees are pinned here:

1. RSSD campaign cells carry *exact* recovery and forensic metrics
   (page sets verified against an independent trace replay), while
   evidence-free defenses carry the ``None`` defaults.
2. A remote-tier time-order violation is surfaced as a structured
   error in :class:`~repro.campaign.results.CellResult` instead of
   being silently swallowed (the historical failure mode).
3. The full forensic report for every RSSD cell of the tiny campaign
   grid reproduces ``tests/golden/forensics_tiny.json`` bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign import CampaignGrid, CellResult, run_cell
from repro.campaign.engine import execute_cell_scenario
from repro.nvmeoe import remote as remote_module

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_FORENSICS = GOLDEN_DIR / "forensics_tiny.json"


def tiny_spec(cell_key: str):
    matches = [spec for spec in CampaignGrid.tiny().cells() if spec.cell_key == cell_key]
    assert matches, f"cell {cell_key} not in the tiny grid"
    return matches[0]


class TestCellForensicMetrics:
    def test_rssd_cell_reports_exact_metrics(self):
        result = run_cell(tiny_spec("RSSD/trimming-attack/office-edit/tiny"))
        assert result.forensic_pattern == "encrypt-then-trim"
        assert result.recovery_exact is True
        assert result.exact_pages_lost == 0
        assert result.exact_pages_recovered == result.pages_recovered
        assert result.first_malicious_us is not None
        assert result.blast_radius_pages >= result.victim_pages
        assert result.remote_time_order_ok is True
        assert result.integrity_errors == []

    def test_evidence_free_defense_has_default_forensic_fields(self):
        result = run_cell(tiny_spec("LocalSSD/classic/office-edit/tiny"))
        assert result.forensic_pattern is None
        assert result.recovery_exact is None
        assert result.exact_pages_recovered is None
        assert result.remote_time_order_ok is None
        assert result.integrity_errors == []

    def test_version1_artifact_cells_load_with_defaults(self):
        data = {
            "cell_key": "X/classic/office-edit/tiny",
            "defense": "X",
            "attack": "classic",
            "workload": "office-edit",
            "device_config": "tiny",
            "recovery_fraction": 1.0,
            "defended": True,
            "victim_pages": 4,
            "pages_recovered": 4,
            "detected": False,
            "detection_latency_us": None,
            "compromised": False,
            "attack_duration_us": 10,
            "write_amplification": 1.0,
            "mean_write_latency_us": 14.0,
            "mean_read_latency_us": 60.0,
            "host_commands": 20,
            "flash_pages_programmed": 8,
            "oplog_hash": None,
            "env_seed": 1,
            "workload_seed": 2,
            "attack_seed": 3,
        }
        result = CellResult.from_dict(data)
        assert result.forensic_pattern is None
        assert result.integrity_errors == []


class TestTimeOrderSurfacing:
    def test_remote_time_order_violation_recorded_as_structured_error(self, monkeypatch):
        monkeypatch.setattr(
            remote_module.StorageServer, "verify_time_order", lambda self: False
        )
        result = run_cell(tiny_spec("RSSD/classic/office-edit/tiny"))
        assert result.remote_time_order_ok is False
        assert any(
            "remote-time-order-violation" in error for error in result.integrity_errors
        )

    def test_clean_run_records_no_integrity_errors(self):
        result = run_cell(tiny_spec("RSSD/classic/office-edit/tiny"))
        assert result.remote_time_order_ok is True
        assert result.integrity_errors == []


class TestGoldenForensicReport:
    def _fresh_reports(self) -> dict:
        reports = {}
        for spec in CampaignGrid.tiny().cells():
            if spec.defense != "RSSD":
                continue
            scenario = execute_cell_scenario(spec)
            engine = scenario.defense.forensics_engine()
            reports[spec.cell_key] = engine.investigate(
                recover_to_us=scenario.attack_outcome.start_us
            ).to_dict()
        return reports

    def test_tiny_grid_reproduces_golden_forensic_reports(self, update_golden):
        reports = self._fresh_reports()
        text = json.dumps(reports, indent=2, sort_keys=True) + "\n"
        if update_golden:
            GOLDEN_DIR.mkdir(exist_ok=True)
            GOLDEN_FORENSICS.write_text(text, encoding="utf-8")
            pytest.skip(f"golden forensic report rewritten: {GOLDEN_FORENSICS}")
        assert GOLDEN_FORENSICS.exists(), (
            "golden forensic report missing; run pytest "
            "tests/test_campaign_forensics.py --update-golden to create it"
        )
        stored = json.loads(GOLDEN_FORENSICS.read_text(encoding="utf-8"))
        assert reports == stored, (
            "forensic reports diverged from tests/golden/forensics_tiny.json "
            "(run --update-golden if intentional)"
        )

    def test_golden_forensic_reports_have_expected_shape(self):
        stored = json.loads(GOLDEN_FORENSICS.read_text(encoding="utf-8"))
        assert set(stored) == {
            "RSSD/classic/office-edit/tiny",
            "RSSD/trimming-attack/office-edit/tiny",
        }
        for cell_key, report in stored.items():
            assert report["chain_verified"] is True
            assert report["remote_time_order_ok"] is True
            assert report["recovery_exact"] is True
            assert report["pages_lost"] == 0 and report["lost_lbas"] == []
            assert report["pattern"] != "none"
        trim = stored["RSSD/trimming-attack/office-edit/tiny"]
        assert trim["pattern"] == "encrypt-then-trim"
        assert trim["trimmed_pages"] > 0
