"""Tests for the capability matrix (the measured Table 1)."""

import pytest

from repro.defenses.matrix import (
    CapabilityMatrix,
    default_attack_factories,
    default_defense_factories,
    recovery_grade,
)
from repro.ssd.geometry import SSDGeometry


@pytest.fixture(scope="module")
def matrix():
    return CapabilityMatrix(geometry=SSDGeometry.tiny(), victim_files=12)


@pytest.fixture(scope="module")
def key_rows(matrix):
    """Run the matrix once for the defenses the shape assertions need."""
    factories = default_defense_factories()
    wanted = ["LocalSSD", "CloudBackup", "FlashGuard", "TimeSSD", "SSDInsider", "RSSD"]
    rows = matrix.run(defense_factories={name: factories[name] for name in wanted})
    return {row.defense: row for row in rows}


class TestRecoveryGrade:
    def test_grading_thresholds(self):
        assert recovery_grade(1.0) == "●"
        assert recovery_grade(0.995) == "●"
        assert recovery_grade(0.5) == "◗"
        assert recovery_grade(0.06) == "◗"
        assert recovery_grade(0.0) == "❍"


class TestFactories:
    def test_all_table1_rows_have_factories(self):
        names = set(default_defense_factories())
        for expected in (
            "Unveil",
            "CryptoDrop",
            "CloudBackup",
            "ShieldFS",
            "JFS",
            "FlashGuard",
            "TimeSSD",
            "SSDInsider",
            "RBlocker",
            "RSSD",
        ):
            assert expected in names

    def test_attack_columns(self):
        assert set(default_attack_factories()) == {
            "classic",
            "gc-attack",
            "timing-attack",
            "trimming-attack",
        }

    def test_unknown_defense_request_rejected(self):
        from repro.analysis.experiments import run_capability_matrix

        with pytest.raises(KeyError):
            run_capability_matrix(defense_names=["NotADefense"])


class TestMatrixShape:
    """The measured matrix must reproduce the shape of the paper's Table 1."""

    def test_rssd_defends_all_three_new_attacks(self, key_rows):
        rssd = key_rows["RSSD"]
        for attack in ("gc-attack", "timing-attack", "trimming-attack"):
            assert rssd.cells[attack].defended, attack
            assert rssd.cells[attack].recovery_fraction >= 0.99
        assert rssd.recovery_symbol == "●"
        assert rssd.supports_forensics

    def test_unprotected_ssd_loses_everything(self, key_rows):
        local = key_rows["LocalSSD"]
        for attack in ("gc-attack", "timing-attack", "trimming-attack"):
            assert not local.cells[attack].defended
        assert local.recovery_symbol == "❍"

    def test_flashguard_survives_gc_but_not_timing_or_trimming(self, key_rows):
        flashguard = key_rows["FlashGuard"]
        assert flashguard.cells["gc-attack"].defended
        assert not flashguard.cells["timing-attack"].defended
        assert not flashguard.cells["trimming-attack"].defended
        assert flashguard.recovery_symbol == "◗"

    def test_timessd_profile_matches_flashguard_shape(self, key_rows):
        timessd = key_rows["TimeSSD"]
        assert timessd.cells["gc-attack"].defended
        assert not timessd.cells["timing-attack"].defended
        assert not timessd.cells["trimming-attack"].defended

    def test_ssdinsider_fails_all_new_attacks(self, key_rows):
        ssdinsider = key_rows["SSDInsider"]
        for attack in ("gc-attack", "timing-attack", "trimming-attack"):
            assert not ssdinsider.cells[attack].defended, attack
        # But classic ransomware is within its reach.
        assert ssdinsider.cells["classic"].recovery_fraction > 0.5

    def test_cloud_backup_only_helps_against_the_stealthy_attack(self, key_rows):
        backup = key_rows["CloudBackup"]
        assert backup.cells["timing-attack"].recovery_fraction >= 0.5
        assert backup.cells["gc-attack"].recovery_fraction < 0.05
        assert backup.cells["trimming-attack"].recovery_fraction < 0.05
        assert backup.cells["gc-attack"].compromised
        assert not backup.cells["timing-attack"].compromised

    def test_only_rssd_supports_forensics(self, key_rows):
        for name, row in key_rows.items():
            if name == "RSSD":
                assert row.supports_forensics
            else:
                assert not row.supports_forensics

    def test_format_table_renders_every_row(self, key_rows):
        table = CapabilityMatrix.format_table(list(key_rows.values()))
        for name in key_rows:
            assert name in table
        assert "Forensics" in table
