"""Documentation gates: docstring coverage, doc references, doc links.

These tests are the locally-runnable core of the CI ``docs`` job:

* every public symbol in ``repro.campaign``, ``repro.nvmeoe`` and
  ``repro.forensics`` must carry a docstring (the mkdocs API reference
  is generated from them);
* every ``::: identifier`` mkdocstrings directive in ``docs/`` must
  resolve to a real importable object;
* every relative link in ``docs/`` and every page in the ``mkdocs.yml``
  nav must point at a file that exists.

``mkdocs build --strict`` itself runs in CI (and here, when mkdocs is
installed) as the final arbiter.
"""

from __future__ import annotations

import importlib
import importlib.util
import inspect
import pkgutil
import re
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

try:  # PyYAML ships with the docs toolchain, not the base test env.
    import yaml
except ImportError:  # pragma: no cover - exercised only in minimal envs
    yaml = None

REPO_ROOT = Path(__file__).parent.parent
DOCS_DIR = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"

#: Packages whose public API the mkdocs site documents.
DOCUMENTED_PACKAGES = [
    "repro.ablation",
    "repro.api",
    "repro.attacks",
    "repro.campaign",
    "repro.lint",
    "repro.nvmeoe",
    "repro.forensics",
    "repro.scenarios",
]


def iter_package_modules(package_name: str):
    package = importlib.import_module(package_name)
    yield package_name, package
    for info in pkgutil.iter_modules(package.__path__, prefix=package_name + "."):
        yield info.name, importlib.import_module(info.name)


def public_symbols(module_name: str, module):
    """(qualified name, object) for every public symbol ``module`` defines."""
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented where it is defined
        yield f"{module_name}.{name}", obj
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if isinstance(attr, property):
                    yield f"{module_name}.{name}.{attr_name}", attr.fget
                elif inspect.isfunction(attr):
                    yield f"{module_name}.{name}.{attr_name}", attr
                elif isinstance(attr, (classmethod, staticmethod)):
                    yield f"{module_name}.{name}.{attr_name}", attr.__func__


class TestDocstringCoverage:
    @pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
    def test_every_public_symbol_has_a_docstring(self, package_name):
        missing = []
        for module_name, module in iter_package_modules(package_name):
            if not (module.__doc__ or "").strip():
                missing.append(module_name)
            for qualname, obj in public_symbols(module_name, module):
                if not (getattr(obj, "__doc__", None) or "").strip():
                    missing.append(qualname)
        assert not missing, (
            "public symbols without docstrings (the API reference renders "
            "these pages):\n  " + "\n  ".join(sorted(set(missing)))
        )


def mkdocstrings_directives():
    directives = []
    for path in sorted(DOCS_DIR.rglob("*.md")):
        for line in path.read_text(encoding="utf-8").splitlines():
            match = re.match(r"^:::\s+([\w.]+)\s*$", line)
            if match:
                directives.append((path, match.group(1)))
    return directives


class TestDocReferences:
    def test_there_are_api_reference_directives(self):
        assert len(mkdocstrings_directives()) >= 10

    def test_every_mkdocstrings_directive_resolves(self):
        broken = []
        for path, identifier in mkdocstrings_directives():
            module_name, obj = identifier, None
            while module_name:
                if importlib.util.find_spec(module_name) is not None:
                    obj = importlib.import_module(module_name)
                    break
                module_name = module_name.rpartition(".")[0]
            if obj is None:
                broken.append(f"{path.name}: {identifier}")
                continue
            remainder = identifier[len(module_name) :].lstrip(".")
            target = obj
            for part in [p for p in remainder.split(".") if p]:
                target = getattr(target, part, None)
                if target is None:
                    broken.append(f"{path.name}: {identifier}")
                    break
        assert not broken, "unresolvable mkdocstrings references:\n  " + "\n  ".join(
            broken
        )

    def test_every_documented_module_appears_in_the_api_reference(self):
        documented = {identifier for _, identifier in mkdocstrings_directives()}
        missing = []
        for package_name in DOCUMENTED_PACKAGES:
            for module_name, _ in iter_package_modules(package_name):
                if module_name not in documented:
                    missing.append(module_name)
        assert not missing, (
            "modules missing from docs/api/*.md:\n  " + "\n  ".join(missing)
        )


def iter_nav_pages(node):
    if isinstance(node, str):
        yield node
    elif isinstance(node, list):
        for item in node:
            yield from iter_nav_pages(item)
    elif isinstance(node, dict):
        for value in node.values():
            yield from iter_nav_pages(value)


class TestDocLinks:
    @pytest.mark.skipif(yaml is None, reason="PyYAML not installed")
    def test_nav_pages_exist(self):
        config = yaml.safe_load(MKDOCS_YML.read_text(encoding="utf-8"))
        pages = list(iter_nav_pages(config["nav"]))
        assert pages, "mkdocs nav is empty"
        missing = [page for page in pages if not (DOCS_DIR / page).is_file()]
        assert not missing, f"mkdocs nav points at missing files: {missing}"

    def test_relative_links_resolve(self):
        broken = []
        for path in sorted(DOCS_DIR.rglob("*.md")):
            text = path.read_text(encoding="utf-8")
            for target in re.findall(r"\[[^\]]*\]\(([^)\s]+)\)", text):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (path.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    broken.append(f"{path.relative_to(REPO_ROOT)} -> {target}")
        assert not broken, "broken relative links in docs/:\n  " + "\n  ".join(broken)

    @pytest.mark.skipif(yaml is None, reason="PyYAML not installed")
    def test_strict_mode_is_enabled(self):
        config = yaml.safe_load(MKDOCS_YML.read_text(encoding="utf-8"))
        assert config.get("strict") is True


@pytest.mark.skipif(
    shutil.which("mkdocs") is None
    or importlib.util.find_spec("mkdocs_material") is None
    or importlib.util.find_spec("mkdocstrings") is None,
    reason="mkdocs toolchain not installed (CI docs job installs it)",
)
def test_mkdocs_build_strict(tmp_path):
    """The real thing, when the toolchain is available."""
    result = subprocess.run(
        [sys.executable, "-m", "mkdocs", "build", "--strict", "-d", str(tmp_path / "site")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr
