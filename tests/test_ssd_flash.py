"""Tests for the NAND flash array and page contents."""

import pytest

from repro.ssd.errors import FlashStateError
from repro.ssd.flash import (
    FlashArray,
    PageContent,
    PageState,
    shannon_entropy,
)
from repro.ssd.geometry import SSDGeometry


class TestShannonEntropy:
    def test_empty_is_zero(self):
        assert shannon_entropy(b"") == 0.0

    def test_constant_data_is_zero(self):
        assert shannon_entropy(b"\x00" * 1024) == 0.0

    def test_uniform_random_is_near_eight(self):
        data = bytes(range(256)) * 16
        assert shannon_entropy(data) == pytest.approx(8.0)

    def test_text_is_intermediate(self):
        entropy = shannon_entropy(b"the quick brown fox jumps over the lazy dog " * 50)
        assert 2.0 < entropy < 6.0


class TestPageContent:
    def test_from_bytes_carries_payload(self):
        content = PageContent.from_bytes(b"hello world")
        assert content.payload == b"hello world"
        assert content.length == 11
        assert 0.0 <= content.entropy <= 8.0

    def test_from_bytes_identical_data_same_fingerprint(self):
        first = PageContent.from_bytes(b"same data")
        second = PageContent.from_bytes(b"same data")
        assert first.fingerprint == second.fingerprint

    def test_from_bytes_different_data_different_fingerprint(self):
        assert (
            PageContent.from_bytes(b"data A").fingerprint
            != PageContent.from_bytes(b"data B").fingerprint
        )

    def test_encrypted_looking_data(self):
        import os

        random_page = bytes((i * 131 + 17) % 256 for i in range(4096))
        content = PageContent.from_bytes(random_page)
        assert content.looks_encrypted

    def test_synthetic_validation(self):
        with pytest.raises(ValueError):
            PageContent.synthetic(1, -1)
        with pytest.raises(ValueError):
            PageContent.synthetic(1, 10, entropy=9.0)
        with pytest.raises(ValueError):
            PageContent.synthetic(1, 10, compress_ratio=0.0)

    def test_compressed_size(self):
        content = PageContent.synthetic(1, 4096, compress_ratio=0.25)
        assert content.compressed_size() == 1024


class TestFlashArray:
    @pytest.fixture
    def flash(self):
        return FlashArray(SSDGeometry.tiny())

    def test_initial_state_all_free(self, flash):
        counts = flash.state_counts()
        assert counts[PageState.FREE] == 512
        assert counts[PageState.VALID] == 0

    def test_program_then_read(self, flash):
        content = PageContent.from_bytes(b"payload")
        ppn = flash.program(0, content, lpn=5, timestamp_us=100)
        assert flash.page(ppn).state is PageState.VALID
        assert flash.read(ppn).payload == b"payload"
        assert flash.page(ppn).lpn == 5

    def test_programs_fill_block_in_order(self, flash):
        geometry = flash.geometry
        ppns = [
            flash.program(0, PageContent.synthetic(i, 10), lpn=i, timestamp_us=0)
            for i in range(geometry.pages_per_block)
        ]
        assert ppns == list(range(geometry.pages_per_block))
        with pytest.raises(FlashStateError):
            flash.program(0, PageContent.synthetic(99, 10), lpn=99, timestamp_us=0)

    def test_read_unprogrammed_page_fails(self, flash):
        with pytest.raises(FlashStateError):
            flash.read(0)

    def test_invalidate_requires_valid_page(self, flash):
        with pytest.raises(FlashStateError):
            flash.invalidate(0)
        ppn = flash.program(0, PageContent.synthetic(1, 10), lpn=1, timestamp_us=0)
        flash.invalidate(ppn)
        assert flash.page(ppn).state is PageState.INVALID
        with pytest.raises(FlashStateError):
            flash.invalidate(ppn)

    def test_invalidated_data_still_readable_until_erase(self, flash):
        content = PageContent.from_bytes(b"old version")
        ppn = flash.program(0, content, lpn=1, timestamp_us=0)
        flash.invalidate(ppn)
        assert flash.read(ppn).payload == b"old version"

    def test_erase_refuses_blocks_with_valid_pages(self, flash):
        flash.program(0, PageContent.synthetic(1, 10), lpn=1, timestamp_us=0)
        with pytest.raises(FlashStateError):
            flash.erase(0)

    def test_erase_resets_block_and_counts(self, flash):
        ppn = flash.program(0, PageContent.synthetic(1, 10), lpn=1, timestamp_us=0)
        flash.invalidate(ppn)
        block = flash.erase(0)
        assert block.erase_count == 1
        assert block.is_erased
        assert flash.page(ppn).state is PageState.FREE
        with pytest.raises(FlashStateError):
            flash.read(ppn)

    def test_wear_statistics(self, flash):
        ppn = flash.program(0, PageContent.synthetic(1, 10), lpn=1, timestamp_us=0)
        flash.invalidate(ppn)
        flash.erase(0)
        assert flash.total_erases() == 1
        assert flash.max_erase_count() == 1
        assert flash.min_erase_count() == 0

    def test_block_state_counters(self, flash):
        block = flash.block(0)
        assert block.free_pages == 16
        ppn = flash.program(0, PageContent.synthetic(1, 10), lpn=1, timestamp_us=0)
        assert block.valid_pages == 1
        flash.invalidate(ppn)
        assert block.invalid_pages == 1
        assert block.free_pages == 15
