"""Tests for the fleet-scale trace replay runner.

Fleets are built through :func:`repro.api.run_fleet` (or the runner's
internal ``_create`` constructor, for tests that drive one runner
through several scenarios); the deprecated direct ``FleetRunner(...)``
construction is covered by ``test_api_deprecation``.
"""

import pytest

from repro.api import run_fleet
from repro.core.config import RSSDConfig
from repro.core.rssd import RSSD
from repro.ssd.geometry import SSDGeometry
from repro.workloads.fleet import (
    FleetRunner,
    default_fleet_factories,
    shard_trace,
)
from repro.workloads.records import TraceOp, TraceRecord
from repro.workloads.synthetic import SequentialWorkload


def small_trace(n_records=600, capacity=2048):
    workload = SequentialWorkload(
        capacity_pages=capacity,
        iops=2000.0,
        write_fraction=0.7,
        mean_request_pages=1,
        trim_fraction=0.05,
        seed=9,
    )
    records = workload.generate(duration_s=n_records / 2000.0)
    return records[:n_records]


class TestShardTrace:
    def test_chunked_round_robin_partition(self):
        records = small_trace(100)
        shards = shard_trace(records, 4, chunk_records=10)
        assert len(shards) == 4
        assert sum(len(shard) for shard in shards) == len(records)
        assert shards[0][0] is records[0]
        assert shards[1][0] is records[10]
        # Chunks keep consecutive records together.
        assert shards[0][:10] == records[:10]

    def test_per_record_round_robin(self):
        records = small_trace(40)
        shards = shard_trace(records, 4, chunk_records=1)
        assert shards[0][0] is records[0]
        assert shards[1][0] is records[1]

    def test_single_shard_is_identity(self):
        records = small_trace(10)
        assert shard_trace(records, 1) == [records]

    def test_shard_count_validated(self):
        with pytest.raises(ValueError):
            shard_trace([], 0)


class TestFleetRunner:
    @pytest.fixture
    def tiny_fleet(self):
        geometry = SSDGeometry.tiny()
        return FleetRunner._create(
            factories={
                "rssd-0": lambda: RSSD(RSSDConfig.tiny()),
                "rssd-1": lambda: RSSD(RSSDConfig.tiny()),
            },
            honor_timestamps=False,
        )

    def test_mirrored_run_replays_full_trace_everywhere(self, tiny_fleet):
        records = small_trace(400)
        report = tiny_fleet.run_mirrored(records)
        assert report.mode == "mirror"
        assert len(report.devices) == 2
        for device_report in report.devices:
            assert device_report.result.records_replayed == 400
        # Identical devices, identical traffic, identical outcome.
        first, second = report.devices
        assert first.result.pages_written == second.result.pages_written
        assert first.write_amplification == second.write_amplification

    def test_sharded_run_splits_the_trace(self, tiny_fleet):
        records = small_trace(400)
        report = tiny_fleet.run_sharded(records)
        assert report.mode == "shard"
        total = sum(r.result.records_replayed for r in report.devices)
        assert total == 400
        for device_report in report.devices:
            assert 0 < device_report.result.records_replayed < 400

    def test_parallel_mirror_matches_sequential(self, tiny_fleet):
        records = small_trace(300)
        sequential = tiny_fleet.run_mirrored(records)
        parallel = tiny_fleet.run_mirrored(records, parallel=True)
        for seq_report, par_report in zip(sequential.devices, parallel.devices):
            assert seq_report.name == par_report.name
            assert (
                seq_report.result.pages_written == par_report.result.pages_written
            )

    def test_report_table_renders_every_device(self, tiny_fleet):
        report = tiny_fleet.run_mirrored(small_trace(100))
        table = report.format_table()
        assert "rssd-0" in table and "rssd-1" in table
        assert report.device("rssd-0").ops_per_second > 0
        with pytest.raises(KeyError):
            report.device("nope")

    def test_default_fleet_includes_rssd_and_baselines(self):
        factories = default_fleet_factories()
        assert "RSSD" in factories
        assert "LocalSSD" in factories
        report = run_fleet(
            small_trace(150, capacity=1500),
            factories=factories,
            honor_timestamps=False,
        )
        names = {device_report.name for device_report in report.devices}
        assert "RSSD" in names
        assert len(report.devices) == len(factories)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            run_fleet([], factories={})
