"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.crypto.cipher import StreamCipher
from repro.crypto.compression import Compressor
from repro.crypto.hashing import HashChain, MerkleTree
from repro.sim import percentile
from repro.ssd.device import SSD
from repro.ssd.flash import PageContent, shannon_entropy
from repro.ssd.geometry import SSDGeometry
from repro.ssd.ftl import InvalidationCause


# ---------------------------------------------------------------------------
# Crypto substrates
# ---------------------------------------------------------------------------

@given(data=st.binary(min_size=0, max_size=2048), nonce=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=50, deadline=None)
def test_cipher_roundtrip_property(data, nonce):
    cipher = StreamCipher(b"property-test-key")
    assert cipher.decrypt(cipher.encrypt(data, nonce), nonce) == data


@given(data=st.binary(min_size=0, max_size=4096))
@settings(max_examples=50, deadline=None)
def test_compressor_roundtrip_property(data):
    compressor = Compressor()
    assert compressor.decompress(compressor.compress(data)) == data


@given(entries=st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_hash_chain_verifies_only_exact_history(entries):
    chain = HashChain()
    for entry in entries:
        chain.append(entry)
    assert chain.verify(entries)
    # Any single-entry mutation breaks verification.
    mutated = list(entries)
    mutated[len(mutated) // 2] = mutated[len(mutated) // 2] + b"x"
    assert not chain.verify(mutated)


@given(leaves=st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=40),
       index=st.integers(min_value=0, max_value=1000))
@settings(max_examples=50, deadline=None)
def test_merkle_proofs_verify_for_arbitrary_leaves(leaves, index):
    tree = MerkleTree(leaves)
    position = index % len(leaves)
    proof = tree.proof(position)
    assert MerkleTree.verify_proof(leaves[position], proof, tree.root)


@given(data=st.binary(min_size=1, max_size=4096))
@settings(max_examples=50, deadline=None)
def test_entropy_bounds_property(data):
    entropy = shannon_entropy(data)
    assert 0.0 <= entropy <= 8.0
    content = PageContent.from_bytes(data)
    assert 0.0 < content.compress_ratio <= 1.0
    assert content.length == len(data)


@given(values=st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=200),
       fraction=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=50, deadline=None)
def test_percentile_within_range(values, fraction):
    result = percentile(sorted(values), fraction)
    if values:
        assert min(values) <= result <= max(values)
    else:
        assert result == 0.0


# ---------------------------------------------------------------------------
# FTL / device invariants
# ---------------------------------------------------------------------------

@st.composite
def device_operations(draw):
    """A short random sequence of (op, lba) pairs against a tiny device."""
    count = draw(st.integers(min_value=1, max_value=120))
    ops = []
    for _ in range(count):
        kind = draw(st.sampled_from(["write", "trim", "read"]))
        lba = draw(st.integers(min_value=0, max_value=63))
        ops.append((kind, lba))
    return ops


@given(ops=device_operations())
@settings(max_examples=30, deadline=None)
def test_device_read_your_writes_property(ops):
    """The device always returns the most recently written data per LBA."""
    ssd = SSD(geometry=SSDGeometry.tiny())
    shadow = {}
    for index, (kind, lba) in enumerate(ops):
        if kind == "write":
            content = PageContent.synthetic(fingerprint=index + 1, length=4096)
            ssd.write(lba, content)
            shadow[lba] = content.fingerprint
        elif kind == "trim":
            ssd.trim(lba)
            shadow.pop(lba, None)
        else:
            ssd.read(lba)
    for lba, fingerprint in shadow.items():
        live = ssd.read_content(lba)
        assert live is not None and live.fingerprint == fingerprint
    # Unmapped LBAs stay unmapped.
    for lba in range(64):
        if lba not in shadow:
            assert ssd.read_content(lba) is None


@given(ops=device_operations())
@settings(max_examples=30, deadline=None)
def test_flash_accounting_invariants(ops):
    """Cached per-block counters always match a full page walk."""
    from repro.ssd.flash import PageState

    ssd = SSD(geometry=SSDGeometry.tiny())
    for index, (kind, lba) in enumerate(ops):
        if kind == "write":
            ssd.write(lba, PageContent.synthetic(index + 1, 4096))
        elif kind == "trim":
            ssd.trim(lba)
    for block in ssd.flash.iter_blocks():
        assert block.valid_count == block.count_state(PageState.VALID)
        assert block.invalid_count == block.count_state(PageState.INVALID)
        assert block.valid_count + block.invalid_count <= block.next_program_offset
    # Every mapped LBA points at a valid flash page holding that LBA.
    for lba in range(64):
        meta = ssd.ftl.lookup(lba)
        if meta is not None:
            page = ssd.flash.page(meta.ppn)
            assert page.state is PageState.VALID
            assert page.lpn == lba


@given(ops=device_operations())
@settings(max_examples=20, deadline=None)
def test_rssd_retention_invariant_property(ops):
    """RSSD never destroys a stale page before it is safe remotely."""
    from repro.core.config import RSSDConfig
    from repro.core.rssd import RSSD

    rssd = RSSD(config=RSSDConfig.tiny())
    versions_written = {}
    for index, (kind, lba) in enumerate(ops):
        if kind == "write":
            rssd.write(lba, PageContent.synthetic(index + 1, 4096))
            versions_written[lba] = versions_written.get(lba, 0) + 1
        elif kind == "trim":
            rssd.trim(lba)
        else:
            rssd.read(lba)
    assert rssd.data_loss_pages == 0
    # Superseded versions are all accounted for: still on flash or offloaded.
    stale_seen = rssd.retention.stats.stale_pages_seen
    accounted = rssd.retained_pages_local + rssd.retention.stats.pages_released_after_offload
    assert accounted >= 0
    assert rssd.retention.stats.pages_released_unoffloaded == 0
    assert stale_seen == rssd.retention.archived_versions


@given(entries=st.lists(st.tuples(st.integers(0, 63), st.floats(0.0, 8.0)), min_size=1, max_size=80))
@settings(max_examples=30, deadline=None)
def test_oplog_total_ordering_property(entries):
    """The operation log preserves arrival order and passes verification."""
    from repro.core.oplog import OperationLog
    from repro.ssd.device import HostOp, HostOpType

    log = OperationLog(segment_entries=16)
    for index, (lba, entropy) in enumerate(entries):
        op = HostOp(
            sequence=index,
            op_type=HostOpType.WRITE,
            lba=lba,
            npages=1,
            timestamp_us=index * 10,
            latency_us=1.0,
            content=PageContent.synthetic(index, 4096, entropy=round(entropy, 3)),
            stream_id=1,
        )
        log.on_host_op(op)
    all_entries = log.all_entries()
    assert [entry.sequence for entry in all_entries] == list(range(len(entries)))
    assert log.verify_integrity()
