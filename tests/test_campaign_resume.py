"""Fault-injection resume tests: killed sweeps restart bit-identically.

Two harnesses attack the checkpoint journal.  The in-process one arms
:class:`CrashAfterNCells` (``mode="raise"``) at randomized cell
boundaries across every runner backend and asserts the resumed artifact
equals the uninterrupted golden byte for byte.  The subprocess one runs
the real CLI and dies for real -- ``REPRO_CRASH_AFTER_CELLS`` hard-exits
with status 137 at an exact boundary, and a second variant sends an
actual ``SIGKILL`` at whatever cell the poll catches -- then resumes
with ``repro campaign --resume`` and compares output files with bytes.
The journal loader's crash-reality handling (torn final line truncates
with a warning, corrupt interior record refuses, foreign header
refuses) is pinned alongside.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import time
import warnings

import pytest

from repro.campaign import (
    CampaignArtifact,
    CampaignGrid,
    CheckpointError,
    CheckpointJournal,
    CrashAfterNCells,
    InjectedCrash,
    run_campaign,
)
from repro.campaign.checkpoint import crash_hook_from_env
from repro.campaign.runner import BACKENDS

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def small_grid(**overrides) -> CampaignGrid:
    """A 4-cell grid: enough boundaries to crash between, still fast."""
    params = dict(
        defenses=["LocalSSD", "RSSD"],
        attacks=["classic", "trimming-attack"],
        workloads=["office-edit"],
        device_configs=["tiny"],
        victim_files=4,
        file_size_bytes=4096,
        user_activity_hours=1.0,
        seed=31,
    )
    params.update(overrides)
    return CampaignGrid(**params)


def crash_then_resume(tmp_path, n: int, backend: str = "sequential") -> CampaignArtifact:
    """Run, die after ``n`` durable cells, resume; return the resumed artifact."""
    path = str(tmp_path / f"journal-{backend}-{n}.jsonl")
    journal = CheckpointJournal(path)
    with pytest.raises(InjectedCrash):
        run_campaign(
            small_grid(),
            backend=backend,
            jobs=2 if backend != "sequential" else 0,
            journal=journal,
            after_cell=CrashAfterNCells(n),
        )
    resumed = run_campaign(
        small_grid(), journal=CheckpointJournal(path), resume=True
    )
    assert resumed.cells_resumed >= n
    return resumed


class TestCrashAndResumeInProcess:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_resumed_artifact_is_bit_identical_on_every_backend(
        self, tmp_path, backend
    ):
        golden = run_campaign(small_grid())
        resumed = crash_then_resume(tmp_path, n=2, backend=backend)
        assert resumed.to_json() == golden.to_json()

    def test_randomized_crash_boundaries(self, tmp_path):
        golden = run_campaign(small_grid())
        rng = random.Random(2026)
        for n in rng.sample(range(1, 4), 2):
            resumed = crash_then_resume(tmp_path, n=n)
            assert resumed.to_json() == golden.to_json()

    def test_repeated_crashes_make_incremental_progress(self, tmp_path):
        golden = run_campaign(small_grid())
        path = str(tmp_path / "journal.jsonl")
        journal = CheckpointJournal(path)
        with pytest.raises(InjectedCrash):
            run_campaign(small_grid(), journal=journal, after_cell=CrashAfterNCells(1))
        assert len(CheckpointJournal(path).completed_keys()) == 1
        # Resume, crash again one executed cell later: the journal now
        # holds the first cell plus one more.
        with pytest.raises(InjectedCrash):
            run_campaign(
                small_grid(),
                journal=CheckpointJournal(path),
                resume=True,
                after_cell=CrashAfterNCells(1),
            )
        assert len(CheckpointJournal(path).completed_keys()) == 2
        final = run_campaign(
            small_grid(), journal=CheckpointJournal(path), resume=True
        )
        assert final.cells_resumed == 2
        assert final.to_json() == golden.to_json()

    def test_journal_records_exactly_the_durable_cells(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with pytest.raises(InjectedCrash):
            run_campaign(
                small_grid(),
                journal=CheckpointJournal(path),
                after_cell=CrashAfterNCells(2),
            )
        header, completed = CheckpointJournal(path).load()
        assert header["kind"] == "campaign"
        assert header["campaign_seed"] == 31
        assert len(completed) == 2
        for key, payload in completed.items():
            assert payload["cell_key"] == key

    def test_resume_without_journal_is_refused(self):
        with pytest.raises(ValueError, match="needs a checkpoint journal"):
            run_campaign(small_grid(), resume=True)


class TestJournalRecovery:
    def _crashed_journal(self, tmp_path) -> str:
        path = str(tmp_path / "journal.jsonl")
        with pytest.raises(InjectedCrash):
            run_campaign(
                small_grid(),
                journal=CheckpointJournal(path),
                after_cell=CrashAfterNCells(1),
            )
        return path

    def test_torn_final_line_truncates_with_a_warning(self, tmp_path):
        path = self._crashed_journal(tmp_path)
        good_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b'{"type": "cell", "key": "half-writ')
        with pytest.warns(RuntimeWarning, match="torn record"):
            _, completed = CheckpointJournal(path).load()
        assert len(completed) == 1
        assert os.path.getsize(path) == good_size
        # The tear is gone: a second load is clean.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            CheckpointJournal(path).load()

    def test_torn_line_with_newline_is_still_recovered(self, tmp_path):
        path = self._crashed_journal(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"not json at all\n")
        with pytest.warns(RuntimeWarning, match="torn record"):
            _, completed = CheckpointJournal(path).load()
        assert len(completed) == 1

    def test_resume_after_torn_line_is_bit_identical(self, tmp_path):
        golden = run_campaign(small_grid())
        path = self._crashed_journal(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b'{"type": "cell", "key": "torn"')
        with pytest.warns(RuntimeWarning, match="torn record"):
            resumed = run_campaign(
                small_grid(), journal=CheckpointJournal(path), resume=True
            )
        assert resumed.cells_resumed == 1
        assert resumed.to_json() == golden.to_json()

    def test_corrupt_interior_record_is_an_error(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "header", "kind": "campaign"}) + "\n")
            handle.write("corrupted interior line\n")
            handle.write(json.dumps({"type": "cell", "key": "k", "payload": 1}) + "\n")
        with pytest.raises(CheckpointError, match="corrupt journal record"):
            CheckpointJournal(path).load()

    def test_header_must_be_the_first_record(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "cell", "key": "k", "payload": 1}) + "\n")
            handle.write(json.dumps({"type": "header", "kind": "campaign"}) + "\n")
        with pytest.raises(CheckpointError, match="header"):
            CheckpointJournal(path).load()

    def test_missing_journal_is_an_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint journal"):
            CheckpointJournal(str(tmp_path / "nothing.jsonl")).load()

    def test_foreign_header_refuses_to_resume(self, tmp_path):
        path = self._crashed_journal(tmp_path)
        with pytest.raises(CheckpointError, match="different sweep"):
            run_campaign(
                small_grid(seed=32),
                journal=CheckpointJournal(path),
                resume=True,
            )

    def test_append_without_open_handle_is_an_error(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "journal.jsonl"))
        with pytest.raises(CheckpointError, match="not open"):
            journal.append_cell("k", {"x": 1})


class TestRocAndAblationCrashResume:
    def test_roc_sweep_resumes_bit_identically(self, tmp_path):
        from repro.api import run_roc

        grid = small_grid(defenses=["RSSD"], attacks=["classic", "trimming-attack"])
        golden = run_roc(grid)
        path = str(tmp_path / "roc-journal.jsonl")
        with pytest.raises(InjectedCrash):
            run_roc(
                grid,
                journal=CheckpointJournal(path),
                after_cell=CrashAfterNCells(1),
            )
        resumed = run_roc(grid, journal=CheckpointJournal(path), resume=True)
        assert resumed.cells_resumed == 1
        assert resumed.to_json() == golden.to_json()

    def test_ablation_study_resumes_bit_identically(self, tmp_path):
        from repro.ablation import AblationStudy
        from repro.api import ScenarioSpec

        study = AblationStudy(
            base_spec=ScenarioSpec(
                defense="RSSD",
                attack="classic",
                workload="office-edit",
                device="tiny",
                victim_files=4,
                user_activity_hours=1.0,
                seed=11,
            ),
            features=("local-detector",),
        )
        golden = study.run()
        path = str(tmp_path / "ablation-journal.jsonl")
        with pytest.raises(InjectedCrash):
            study.run(
                journal=CheckpointJournal(path), after_cell=CrashAfterNCells(1)
            )
        resumed = study.run(journal=CheckpointJournal(path), resume=True)
        assert resumed.cells_resumed == 1
        assert resumed.to_json() == golden.to_json()


class TestCrashHook:
    def test_rejects_nonpositive_quotas_and_unknown_modes(self):
        with pytest.raises(ValueError):
            CrashAfterNCells(0)
        with pytest.raises(ValueError):
            CrashAfterNCells(1, mode="segfault")

    def test_env_hook_is_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CRASH_AFTER_CELLS", raising=False)
        assert crash_hook_from_env() is None
        monkeypatch.setenv("REPRO_CRASH_AFTER_CELLS", "  ")
        assert crash_hook_from_env() is None

    def test_env_hook_arms_a_hard_exit(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRASH_AFTER_CELLS", "3")
        hook = crash_hook_from_env()
        assert isinstance(hook, CrashAfterNCells)
        assert (hook.n, hook.mode) == (3, "exit")


class TestCliKillAndResume:
    """End-to-end: the real CLI, killed for real, resumed byte-identically."""

    CELL_ARGS = [
        "campaign",
        "--grid",
        "tiny",
        "--defenses",
        "LocalSSD",
        "RSSD",
        "--attacks",
        "classic",
        "trimming-attack",
        "--victim-files",
        "4",
    ]

    def _run_cli(self, args, **env_overrides):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        env.pop("REPRO_CRASH_AFTER_CELLS", None)
        env.update(env_overrides)
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_injected_hard_exit_then_cli_resume_matches_golden(self, tmp_path):
        golden_path = str(tmp_path / "golden.json")
        proc = self._run_cli([*self.CELL_ARGS, "--output", golden_path])
        assert proc.returncode == 0, proc.stderr

        state = str(tmp_path / "state")
        crashed_path = str(tmp_path / "crashed.json")
        crashed = self._run_cli(
            [*self.CELL_ARGS, "--cache-dir", state, "--no-cache", "--output", crashed_path],
            REPRO_CRASH_AFTER_CELLS="2",
        )
        # os._exit(137): the SIGKILL-equivalent status, and no artifact.
        assert crashed.returncode == 137
        assert not os.path.exists(crashed_path)
        journal = CheckpointJournal(os.path.join(state, "journal.jsonl"))
        assert len(journal.completed_keys()) == 2

        resumed_path = str(tmp_path / "resumed.json")
        resumed = self._run_cli(
            [
                *self.CELL_ARGS,
                "--resume",
                state,
                "--no-cache",
                "--output",
                resumed_path,
                "--baseline",
                golden_path,
            ]
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resume: 2 cells restored" in resumed.stdout
        assert "baseline match" in resumed.stdout
        with open(golden_path, "rb") as a, open(resumed_path, "rb") as b:
            assert a.read() == b.read()

    def test_real_sigkill_mid_run_then_resume(self, tmp_path):
        golden_path = str(tmp_path / "golden.json")
        proc = self._run_cli([*self.CELL_ARGS, "--output", golden_path])
        assert proc.returncode == 0, proc.stderr

        state = str(tmp_path / "state")
        journal_path = os.path.join(state, "journal.jsonl")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        env.pop("REPRO_CRASH_AFTER_CELLS", None)
        killed_path = str(tmp_path / "killed.json")
        child = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                *self.CELL_ARGS,
                "--cache-dir",
                state,
                "--no-cache",
                "--output",
                killed_path,
            ],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Kill as soon as at least one cell is durable (header plus
            # one record).  If the child wins the race and finishes, the
            # resume below still must reproduce the golden bytes.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline and child.poll() is None:
                if os.path.exists(journal_path):
                    with open(journal_path, "rb") as handle:
                        if handle.read().count(b"\n") >= 2:
                            break
                time.sleep(0.02)
            child.kill()  # SIGKILL; no cleanup handlers run
        finally:
            child.wait(timeout=60)

        resumed_path = str(tmp_path / "resumed.json")
        resumed = self._run_cli(
            [
                *self.CELL_ARGS,
                "--resume",
                state,
                "--no-cache",
                "--output",
                resumed_path,
            ]
        )
        assert resumed.returncode == 0, resumed.stderr
        with open(golden_path, "rb") as a, open(resumed_path, "rb") as b:
            assert a.read() == b.read()
