"""Tests for SSD geometry arithmetic."""

import pytest

from repro.ssd.geometry import SSDGeometry


class TestGeometryBasics:
    def test_tiny_totals(self):
        geometry = SSDGeometry.tiny()
        assert geometry.total_chips == 2
        assert geometry.total_blocks == 32
        assert geometry.total_pages == 512

    def test_exported_pages_respect_overprovisioning(self):
        geometry = SSDGeometry.tiny()
        assert geometry.exported_pages == int(512 * (1 - 0.125))
        assert geometry.exported_pages < geometry.total_pages

    def test_capacity_bytes(self):
        geometry = SSDGeometry.tiny()
        assert geometry.raw_capacity_bytes == 512 * 4096
        assert geometry.exported_capacity_bytes == geometry.exported_pages * 4096
        assert geometry.block_size_bytes == 16 * 4096

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            SSDGeometry(channels=0)
        with pytest.raises(ValueError):
            SSDGeometry(pages_per_block=0)

    def test_invalid_overprovision_rejected(self):
        with pytest.raises(ValueError):
            SSDGeometry(overprovision_ratio=1.0)
        with pytest.raises(ValueError):
            SSDGeometry(overprovision_ratio=-0.1)


class TestAddressing:
    def test_ppn_to_block_and_offset(self):
        geometry = SSDGeometry.tiny()
        ppn = 3 * geometry.pages_per_block + 5
        assert geometry.ppn_to_block(ppn) == 3
        assert geometry.ppn_to_page_offset(ppn) == 5

    def test_block_to_first_ppn_roundtrip(self):
        geometry = SSDGeometry.tiny()
        for block_index in (0, 7, geometry.total_blocks - 1):
            first = geometry.block_to_first_ppn(block_index)
            assert geometry.ppn_to_block(first) == block_index
            assert geometry.ppn_to_page_offset(first) == 0

    def test_block_to_channel_covers_all_channels(self):
        geometry = SSDGeometry.tiny()
        channels = {
            geometry.block_to_channel(block) for block in range(geometry.total_blocks)
        }
        assert channels == set(range(geometry.channels))

    def test_out_of_range_checks(self):
        geometry = SSDGeometry.tiny()
        with pytest.raises(ValueError):
            geometry.check_ppn(geometry.total_pages)
        with pytest.raises(ValueError):
            geometry.check_ppn(-1)
        with pytest.raises(ValueError):
            geometry.check_block(geometry.total_blocks)


class TestPresets:
    def test_small_is_larger_than_tiny(self):
        assert SSDGeometry.small().total_pages > SSDGeometry.tiny().total_pages

    def test_cosmos_is_terabyte_class(self):
        geometry = SSDGeometry.cosmos_openssd()
        assert geometry.raw_capacity_bytes > 10**12
