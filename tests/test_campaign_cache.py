"""Result-cache tests: warm re-runs are free and byte-identical.

The contract under test is the heart of the persistence layer: a fully
warm cache re-run must execute **zero** cells (proved with an
execution-count spy) while emitting exactly the same artifact bytes as
the cold run, and invalidation must be structural -- a changed spec
misses, a changed artifact version or code fingerprint counts as stale
and re-executes.  The streaming artifact writer is pinned against the
canonical ``to_json`` form so million-cell grids can serialize from the
journal without ever materializing the cell list.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.ablation import AblationStudy
from repro.api import ScenarioSpec, run_roc
from repro.campaign import (
    ARTIFACT_VERSION,
    CampaignArtifact,
    CampaignGrid,
    CheckpointJournal,
    ResultCache,
    code_fingerprint,
    run_campaign,
    write_artifact_stream,
)
from repro.campaign import engine as campaign_engine
from repro.campaign.cache import FINGERPRINT_ENV, CacheStats
from repro.campaign.engine import cell_spec_hash


def small_grid(**overrides) -> CampaignGrid:
    """A 2-cell grid small enough to run many times in one test module."""
    params = dict(
        defenses=["LocalSSD", "RSSD"],
        attacks=["classic"],
        workloads=["office-edit"],
        device_configs=["tiny"],
        victim_files=4,
        file_size_bytes=4096,
        user_activity_hours=1.0,
        seed=23,
    )
    params.update(overrides)
    return CampaignGrid(**params)


class ExecutionSpy:
    """Wraps ``run_cell`` and records every real execution's cell key."""

    def __init__(self, fn):
        self.fn = fn
        self.calls = []

    def __call__(self, spec):
        self.calls.append(spec.cell_key)
        return self.fn(spec)


@pytest.fixture
def run_cell_spy(monkeypatch) -> ExecutionSpy:
    """Patch the engine's ``run_cell`` with an execution counter."""
    spy = ExecutionSpy(campaign_engine.run_cell)
    monkeypatch.setattr(campaign_engine, "run_cell", spy)
    return spy


class TestCodeFingerprint:
    def test_is_a_stable_sha256_hexdigest(self, monkeypatch):
        monkeypatch.delenv(FINGERPRINT_ENV, raising=False)
        first = code_fingerprint()
        assert len(first) == 64
        int(first, 16)  # hex or raise
        assert code_fingerprint() == first

    def test_environment_override_wins(self, monkeypatch):
        monkeypatch.setenv(FINGERPRINT_ENV, "pinned-by-test")
        assert code_fingerprint() == "pinned-by-test"
        # New caches pick the override up as their identity.
        assert ResultCache("unused-root").fingerprint == "pinned-by-test"


class TestResultCacheUnit:
    def test_roundtrip_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        cache.put("campaign-cell", "ab" * 32, 2, {"x": 1})
        assert cache.get("campaign-cell", "ab" * 32, 2) == {"x": 1}
        assert cache.stats.to_dict() == {
            "hits": 1,
            "misses": 0,
            "stale": 0,
            "stores": 1,
        }

    def test_absent_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        assert cache.get("campaign-cell", "cd" * 32, 2) is None
        assert cache.stats.misses == 1
        assert cache.stats.stale == 0

    def test_version_mismatch_is_stale(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        cache.put("campaign-cell", "ab" * 32, 2, {"x": 1})
        assert cache.get("campaign-cell", "ab" * 32, 3) is None
        assert cache.stats.stale == 1
        assert cache.stats.misses == 1

    def test_fingerprint_mismatch_is_stale(self, tmp_path):
        ResultCache(str(tmp_path), fingerprint="old-code").put(
            "campaign-cell", "ab" * 32, 2, {"x": 1}
        )
        cache = ResultCache(str(tmp_path), fingerprint="new-code")
        assert cache.get("campaign-cell", "ab" * 32, 2) is None
        assert cache.stats.stale == 1

    def test_corrupt_entry_is_a_miss_never_an_error(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        path = cache.entry_path("campaign-cell", "ab" * 32)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        assert cache.get("campaign-cell", "ab" * 32, 2) is None
        assert cache.stats.misses == 1
        assert cache.stats.stale == 0

    def test_overwrite_keeps_the_newest_payload(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        cache.put("campaign-cell", "ab" * 32, 2, {"x": 1})
        cache.put("campaign-cell", "ab" * 32, 2, {"x": 2})
        assert cache.get("campaign-cell", "ab" * 32, 2) == {"x": 2}

    def test_entries_shard_by_hash_prefix(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        path = cache.entry_path("roc-cell", "beef" + "0" * 60)
        assert path.endswith(
            os.path.join("objects", "roc-cell", "be", "beef" + "0" * 60 + ".json")
        )

    def test_stats_summary_is_one_line(self):
        stats = CacheStats(hits=3, misses=2, stale=1, stores=2)
        assert stats.summary() == "3 hits, 2 misses (1 stale), 2 stored"


class TestCampaignWarmCache:
    def test_warm_rerun_executes_zero_cells_and_is_bit_identical(
        self, tmp_path, run_cell_spy
    ):
        grid = small_grid()
        cold_cache = ResultCache(str(tmp_path / "cache"))
        cold = run_campaign(grid, cache=cold_cache)
        assert sorted(run_cell_spy.calls) == cold.cell_keys
        assert cold_cache.stats.to_dict() == {
            "hits": 0,
            "misses": 2,
            "stale": 0,
            "stores": 2,
        }

        warm_cache = ResultCache(str(tmp_path / "cache"))
        warm = run_campaign(grid, cache=warm_cache)
        # The spy saw no new executions: every cell came from the store.
        assert len(run_cell_spy.calls) == 2
        assert warm_cache.stats.to_dict() == {
            "hits": 2,
            "misses": 0,
            "stale": 0,
            "stores": 0,
        }
        assert warm.to_json() == cold.to_json()
        assert warm == cold  # cache_stats is compare=False provenance

    def test_spec_change_misses_instead_of_serving_stale_results(
        self, tmp_path, run_cell_spy
    ):
        cache_root = str(tmp_path / "cache")
        run_campaign(small_grid(), cache=ResultCache(cache_root))
        reseeded = ResultCache(cache_root)
        artifact = run_campaign(small_grid(seed=24), cache=reseeded)
        # A different campaign seed re-derives every cell seed, so every
        # lookup misses (plain miss, not stale) and re-executes.
        assert reseeded.stats.to_dict() == {
            "hits": 0,
            "misses": 2,
            "stale": 0,
            "stores": 2,
        }
        assert len(run_cell_spy.calls) == 4
        assert artifact.cells[0].env_seed != small_grid().cells()[0].env_seed

    def test_artifact_version_bump_invalidates_stored_cells(self, tmp_path):
        grid = small_grid()
        cache_root = str(tmp_path / "cache")
        run_campaign(grid, cache=ResultCache(cache_root))
        probe = ResultCache(cache_root)
        spec_hash = cell_spec_hash(grid.cells()[0])
        assert probe.get("campaign-cell", spec_hash, ARTIFACT_VERSION) is not None
        assert probe.get("campaign-cell", spec_hash, ARTIFACT_VERSION + 1) is None
        assert probe.stats.stale == 1

    def test_code_fingerprint_change_invalidates_and_reexecutes(
        self, tmp_path, run_cell_spy
    ):
        grid = small_grid()
        cache_root = str(tmp_path / "cache")
        cold = run_campaign(grid, cache=ResultCache(cache_root))
        edited = ResultCache(cache_root, fingerprint="simulated-code-change")
        warm = run_campaign(grid, cache=edited)
        assert edited.stats.to_dict() == {
            "hits": 0,
            "misses": 2,
            "stale": 2,
            "stores": 2,
        }
        assert len(run_cell_spy.calls) == 4
        # Same inputs, so re-execution still reproduces the bytes.
        assert warm.to_json() == cold.to_json()

    def test_fingerprint_env_var_reaches_new_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FINGERPRINT_ENV, "release-a")
        cache_root = str(tmp_path / "cache")
        run_campaign(small_grid(), cache=ResultCache(cache_root))
        monkeypatch.setenv(FINGERPRINT_ENV, "release-b")
        stale = ResultCache(cache_root)
        assert stale.fingerprint == "release-b"
        run_campaign(small_grid(), cache=stale)
        assert stale.stats.stale == 2

    def test_cache_stats_never_enter_the_serialized_artifact(self, tmp_path):
        grid = small_grid()
        cached = run_campaign(grid, cache=ResultCache(str(tmp_path / "cache")))
        plain = run_campaign(grid)
        assert cached.cache_stats is not None
        assert plain.cache_stats is None
        assert cached.to_json() == plain.to_json()
        assert "cache" not in cached.to_json()
        reloaded = CampaignArtifact.from_json(cached.to_json())
        assert reloaded == cached


class TestFilteredRunsWithCache:
    def test_cache_hit_cells_still_appear_in_baseline_diff(self, tmp_path):
        grid = small_grid()
        cache_root = str(tmp_path / "cache")
        full = run_campaign(grid, cache=ResultCache(cache_root))

        warm = ResultCache(cache_root)
        filtered = run_campaign(grid, filters=["LocalSSD"], cache=warm)
        # The cell was served from the cache, not executed ...
        assert warm.stats.to_dict() == {
            "hits": 1,
            "misses": 0,
            "stale": 0,
            "stores": 0,
        }
        # ... yet it is a full artifact citizen: present, and compared
        # value-by-value in a baseline diff.
        assert filtered.cell_keys == ["LocalSSD/classic/office-edit/tiny"]
        differences = filtered.diff(full)
        assert differences == ["missing cell: RSSD/classic/office-edit/tiny"]
        subset_baseline = CampaignArtifact(
            campaign_seed=full.campaign_seed,
            grid=full.grid,
            cells=[full.cell("LocalSSD/classic/office-edit/tiny")],
        )
        assert filtered.diff(subset_baseline) == []


class TestRocAndAblationRideAlong:
    def test_roc_sweep_caches_and_reproduces(self, tmp_path):
        grid = small_grid(defenses=["RSSD"])
        cache_root = str(tmp_path / "cache")
        cold = run_roc(grid, cache=ResultCache(cache_root))
        warm_cache = ResultCache(cache_root)
        warm = run_roc(grid, cache=warm_cache)
        assert warm_cache.stats.to_dict() == {
            "hits": 1,
            "misses": 0,
            "stale": 0,
            "stores": 0,
        }
        assert warm.to_json() == cold.to_json()
        assert warm.cache_stats is warm_cache.stats

    def test_ablation_study_caches_and_reproduces(self, tmp_path):
        study = AblationStudy(
            base_spec=ScenarioSpec(
                defense="RSSD",
                attack="classic",
                workload="office-edit",
                device="tiny",
                victim_files=4,
                user_activity_hours=1.0,
                seed=11,
            ),
            features=("local-detector",),
        )
        cache_root = str(tmp_path / "cache")
        cold = study.run(cache=ResultCache(cache_root))
        warm_cache = ResultCache(cache_root)
        warm = study.run(cache=warm_cache)
        assert warm_cache.stats.hits == len(cold.cells)
        assert warm_cache.stats.misses == 0
        assert warm.to_json() == cold.to_json()


class TestStreamingArtifactWriter:
    def _stream(self, artifact: CampaignArtifact) -> str:
        out = io.StringIO()
        count = write_artifact_stream(
            out,
            artifact.campaign_seed,
            artifact.grid,
            (cell.to_dict() for cell in artifact.cells),
            version=artifact.version,
        )
        assert count == len(artifact.cells)
        return out.getvalue()

    def test_bytes_match_the_canonical_serializer(self, tmp_path):
        artifact = run_campaign(small_grid())
        assert self._stream(artifact) == artifact.to_json()

    def test_empty_cell_list_matches_too(self):
        artifact = CampaignArtifact(campaign_seed=7, grid={"note": "empty"})
        assert self._stream(artifact) == artifact.to_json()
        assert json.loads(self._stream(artifact))["cells"] == []

    def test_streaming_from_the_journal_reproduces_the_artifact(self, tmp_path):
        grid = small_grid()
        journal = CheckpointJournal(str(tmp_path / "journal.jsonl"))
        artifact = run_campaign(grid, journal=journal)
        destination = str(tmp_path / "streamed.json")
        count = write_artifact_stream(
            destination,
            artifact.campaign_seed,
            artifact.grid,
            journal.iter_payloads_sorted(),
            version=artifact.version,
        )
        assert count == len(artifact.cells)
        with open(destination, "r", encoding="utf-8") as handle:
            assert handle.read() == artifact.to_json()

    def test_journal_key_restriction_drops_filtered_cells(self, tmp_path):
        grid = small_grid()
        journal = CheckpointJournal(str(tmp_path / "journal.jsonl"))
        artifact = run_campaign(grid, journal=journal)
        keep = {"RSSD/classic/office-edit/tiny"}
        payloads = list(journal.iter_payloads_sorted(keys=keep))
        assert [cell["cell_key"] for cell in payloads] == sorted(keep)
        assert payloads[0] == artifact.cell(next(iter(keep))).to_dict()
