"""Tests for trace records, generators, volume profiles and replay."""

import pytest

from repro.ssd.device import SSD
from repro.ssd.geometry import SSDGeometry
from repro.workloads.fio import FioJob, standard_jobs
from repro.workloads.fiu import FIU_VOLUMES, figure2_volumes, fiu_profile, fiu_trace
from repro.workloads.msr import MSR_VOLUMES, msr_profile, msr_trace
from repro.workloads.records import (
    TraceOp,
    TraceRecord,
    collect_stats,
    load_trace,
    merge_traces,
    save_trace,
)
from repro.workloads.replay import TraceReplayer
from repro.workloads.synthetic import (
    MixedWorkload,
    SequentialWorkload,
    UniformRandomWorkload,
    VolumeProfile,
    ZipfianWorkload,
    ZipfSampler,
    profile_workload,
)


class TestTraceRecords:
    def test_line_roundtrip(self):
        record = TraceRecord(123, TraceOp.WRITE, 456, 4, stream_id=2, entropy=7.5, compress_ratio=0.9)
        assert TraceRecord.from_line(record.to_line()) == record

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.from_line("1,write,2")

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(-1, TraceOp.READ, 0)
        with pytest.raises(ValueError):
            TraceRecord(0, TraceOp.READ, -1)
        with pytest.raises(ValueError):
            TraceRecord(0, TraceOp.WRITE, 0, entropy=9.0)

    def test_collect_stats(self):
        records = [
            TraceRecord(0, TraceOp.WRITE, 0, 2),
            TraceRecord(10, TraceOp.WRITE, 0, 2),
            TraceRecord(20, TraceOp.READ, 4, 1),
            TraceRecord(30, TraceOp.TRIM, 0, 2),
        ]
        stats = collect_stats(records)
        assert stats.writes == 2
        assert stats.reads == 1
        assert stats.trims == 1
        assert stats.pages_written == 4
        assert stats.unique_lbas_written == 2
        assert stats.overwrite_ratio == pytest.approx(2.0)
        assert stats.duration_us == 30
        assert stats.write_fraction == pytest.approx(2 / 3)

    def test_merge_traces_sorted(self):
        a = [TraceRecord(30, TraceOp.READ, 0), TraceRecord(10, TraceOp.READ, 1)]
        b = [TraceRecord(20, TraceOp.WRITE, 2)]
        merged = merge_traces(a, b)
        assert [record.timestamp_us for record in merged] == [10, 20, 30]

    def test_save_and_load(self, tmp_path):
        records = [TraceRecord(i, TraceOp.WRITE, i, 1) for i in range(5)]
        path = str(tmp_path / "trace.csv")
        assert save_trace(records, path) == 5
        assert load_trace(path) == records


class TestSyntheticGenerators:
    def test_sequential_workload_is_sequential(self):
        workload = SequentialWorkload(capacity_pages=1000, iops=1000, write_fraction=1.0, seed=3)
        records = workload.generate(0.2)
        lbas = [record.lba for record in records[:20]]
        assert lbas == sorted(lbas)

    def test_uniform_workload_spreads_accesses(self):
        workload = UniformRandomWorkload(capacity_pages=10_000, iops=2000, seed=3)
        records = workload.generate(0.5)
        lbas = {record.lba for record in records}
        assert len(lbas) > len(records) * 0.5

    def test_zipf_workload_is_skewed(self):
        workload = ZipfianWorkload(
            capacity_pages=10_000, working_set_pages=2_000, zipf_theta=1.1, iops=2000, seed=3
        )
        records = workload.generate(1.0)
        counts = {}
        for record in records:
            counts[record.lba] = counts.get(record.lba, 0) + 1
        hottest = max(counts.values())
        assert hottest > 2  # some pages are clearly hotter than others

    def test_write_fraction_respected(self):
        workload = UniformRandomWorkload(capacity_pages=1000, iops=2000, write_fraction=0.8, seed=5)
        stats = collect_stats(workload.generate(1.0))
        assert 0.65 < stats.write_fraction < 0.95

    def test_deterministic_given_seed(self):
        first = UniformRandomWorkload(1000, iops=500, seed=7).generate(0.2)
        second = UniformRandomWorkload(1000, iops=500, seed=7).generate(0.2)
        assert first == second

    def test_mixed_workload_merges_components(self):
        mixed = MixedWorkload(
            [
                SequentialWorkload(1000, iops=200, stream_id=1, seed=1),
                UniformRandomWorkload(1000, iops=200, stream_id=2, seed=2),
            ]
        )
        records = mixed.generate(0.5)
        streams = {record.stream_id for record in records}
        assert streams == {1, 2}
        timestamps = [record.timestamp_us for record in records]
        assert timestamps == sorted(timestamps)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            UniformRandomWorkload(0)
        with pytest.raises(ValueError):
            UniformRandomWorkload(100, iops=0)
        with pytest.raises(ValueError):
            UniformRandomWorkload(100).generate(0)
        with pytest.raises(ValueError):
            MixedWorkload([])

    def test_zipf_sampler_bounds(self):
        import random

        sampler = ZipfSampler(population=500, theta=0.9, rng=random.Random(1))
        samples = [sampler.sample() for _ in range(1000)]
        assert all(0 <= value < 500 for value in samples)


class TestVolumeProfiles:
    def test_every_figure2_volume_has_a_profile(self):
        from repro.analysis.retention import lookup_volume

        for volume in figure2_volumes():
            profile = lookup_volume(volume)
            assert profile.daily_write_gb > 0

    def test_msr_and_fiu_lookup(self):
        assert msr_profile("hm").name == "hm"
        assert fiu_profile("email").name == "email"
        with pytest.raises(KeyError):
            msr_profile("does-not-exist")
        with pytest.raises(KeyError):
            fiu_profile("does-not-exist")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            VolumeProfile("bad", daily_write_gb=-1, write_fraction=0.5)
        with pytest.raises(ValueError):
            VolumeProfile("bad", daily_write_gb=1, write_fraction=1.5)

    def test_profile_workload_scales_with_compression(self):
        profile = msr_profile("hm")
        slow = profile_workload(profile, 10_000, duration_s=0.5, time_compression=1_000)
        fast = profile_workload(profile, 10_000, duration_s=0.5, time_compression=10_000)
        assert len(fast) > len(slow)

    def test_msr_and_fiu_trace_generation(self):
        records = msr_trace("hm", capacity_pages=5_000, duration_s=0.2, time_compression=5_000)
        assert records
        records = fiu_trace("email", capacity_pages=5_000, duration_s=0.2, time_compression=5_000)
        assert records
        stats = collect_stats(records)
        assert stats.write_fraction > 0.5  # email is write heavy


class TestFioJobs:
    def test_standard_jobs_present(self):
        jobs = standard_jobs()
        assert set(jobs) == {"seq-read", "seq-write", "rand-read", "rand-write", "oltp-mix"}

    def test_job_generation(self):
        job = FioJob("test", "rand", write_fraction=1.0, iops=500, duration_s=0.2)
        records = job.generate(10_000)
        stats = collect_stats(records)
        assert stats.reads == 0
        assert stats.writes == len(records)

    def test_job_validation(self):
        with pytest.raises(ValueError):
            FioJob("bad", "diagonal", write_fraction=0.5)
        with pytest.raises(ValueError):
            FioJob("bad", "seq", write_fraction=2.0)


class TestReplay:
    def test_replay_applies_every_record(self):
        geometry = SSDGeometry.tiny()
        device = SSD(geometry=geometry)
        workload = UniformRandomWorkload(geometry.exported_pages // 2, iops=500, write_fraction=0.6, seed=11)
        records = workload.generate(0.5)
        result = TraceReplayer(device).replay(records)
        assert result.records_replayed == len(records)
        assert result.writes == device.metrics.host_writes
        assert result.reads == device.metrics.host_reads
        assert result.pages_written == device.metrics.host_pages_written

    def test_replay_honors_timestamps(self):
        geometry = SSDGeometry.tiny()
        device = SSD(geometry=geometry)
        records = [
            TraceRecord(1_000_000, TraceOp.WRITE, 0, 1),
            TraceRecord(2_000_000, TraceOp.WRITE, 1, 1),
        ]
        TraceReplayer(device).replay(records)
        assert device.clock.now_us >= 2_000_000

    def test_replay_without_timestamps(self):
        geometry = SSDGeometry.tiny()
        device = SSD(geometry=geometry)
        records = [TraceRecord(10**9, TraceOp.WRITE, 0, 1)]
        TraceReplayer(device, honor_timestamps=False).replay(records)
        assert device.clock.now_us < 10**9

    def test_replay_mean_latencies_reported(self):
        geometry = SSDGeometry.tiny()
        device = SSD(geometry=geometry)
        workload = UniformRandomWorkload(geometry.exported_pages // 2, iops=500, write_fraction=0.5, seed=2)
        result = TraceReplayer(device).replay(workload.generate(0.3))
        if result.writes:
            assert result.mean_write_latency_us > 0
        if result.reads:
            assert result.mean_read_latency_us >= 0
