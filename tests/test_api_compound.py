"""CompoundScenarioSpec: validation, hashing, and noisy execution."""

from __future__ import annotations

import pytest

from repro.api import (
    COMPOUND_SPEC_VERSION,
    BackgroundStream,
    CompoundResult,
    CompoundScenarioSpec,
    ScenarioSpec,
    SpecValidationError,
    run_compound,
)
from repro.campaign.seeding import derive_seed


def tiny_compound(**overrides) -> CompoundScenarioSpec:
    params = dict(
        foreground=ScenarioSpec(
            defense="RSSD",
            attack="classic",
            workload="office-edit",
            device="tiny",
            victim_files=4,
            user_activity_hours=0.5,
            seed=11,
        ),
        background=(BackgroundStream(workload="trace-hm", hours=0.5),),
        attack_offset=0.5,
    )
    params.update(overrides)
    return CompoundScenarioSpec(**params)


class TestValidation:
    def test_background_must_be_trace_workloads(self):
        with pytest.raises(SpecValidationError) as excinfo:
            BackgroundStream(workload="office-edit")
        assert excinfo.value.field == "workload"

    @pytest.mark.parametrize("hours", [0, -1.0, float("nan"), float("inf"), True])
    def test_bad_stream_hours_fail_fast(self, hours):
        with pytest.raises(SpecValidationError) as excinfo:
            BackgroundStream(hours=hours)
        assert excinfo.value.field == "hours"

    @pytest.mark.parametrize("offset", [0.0, -0.5, 1.5, float("nan"), True])
    def test_bad_attack_offset_fails_fast(self, offset):
        with pytest.raises(SpecValidationError) as excinfo:
            tiny_compound(attack_offset=offset)
        assert excinfo.value.field == "attack_offset"

    def test_foreground_must_be_a_spec(self):
        with pytest.raises(SpecValidationError) as excinfo:
            tiny_compound(foreground={"defense": "RSSD"})
        assert excinfo.value.field == "foreground"

    def test_background_entries_must_be_streams(self):
        with pytest.raises(SpecValidationError) as excinfo:
            tiny_compound(background=({"workload": "trace-hm"},))
        assert excinfo.value.field == "background"


class TestIdentity:
    #: Pinned hash of the reference compound spec.  If this changes,
    #: every shipped compound spec identity changes with it -- bump
    #: COMPOUND_SPEC_VERSION and say why in the changelog.
    REFERENCE_HASH = (
        "5d01148deac6bae234af50a1dbc5ab5bfc4d9c3fcf09bc07a52e201e7f986191"
    )

    def test_hash_is_pinned(self):
        assert tiny_compound().spec_hash() == self.REFERENCE_HASH

    def test_compound_key_names_the_noise_shape(self):
        assert tiny_compound().compound_key == (
            "RSSD/classic/office-edit/tiny+bg1@0.5"
        )

    def test_foreground_identity_is_untouched(self):
        """Embedding a spec in a compound never changes the plain hash."""
        plain = ScenarioSpec(seed=11)
        embedded = tiny_compound(foreground=plain).foreground
        assert embedded.spec_hash() == plain.spec_hash()
        assert embedded.to_json() == plain.to_json()

    def test_background_seeds_derive_the_sha256_way(self):
        spec = tiny_compound()
        assert spec.background_seed(0) == derive_seed(
            spec.foreground.seed, "compound-background", 0, "trace-hm"
        )


class TestSerialization:
    def test_round_trip_is_bit_identical(self, tmp_path):
        spec = tiny_compound(
            background=(
                BackgroundStream(workload="trace-hm", hours=0.5),
                BackgroundStream(workload="trace-prn", hours=1.0),
            ),
            attack_offset=0.75,
        )
        path = tmp_path / "compound.json"
        spec.save(str(path))
        rebuilt = CompoundScenarioSpec.load(str(path))
        assert rebuilt.to_json() == spec.to_json()
        assert rebuilt.spec_hash() == spec.spec_hash()

    def test_newer_versions_are_refused(self):
        payload = tiny_compound().to_dict()
        payload["version"] = COMPOUND_SPEC_VERSION + 1
        with pytest.raises(SpecValidationError, match="newer"):
            CompoundScenarioSpec.from_dict(payload)

    def test_unknown_fields_are_refused(self):
        payload = tiny_compound().to_dict()
        payload["gpu_count"] = 8
        with pytest.raises(SpecValidationError, match="unknown"):
            CompoundScenarioSpec.from_dict(payload)


class TestExecution:
    @pytest.fixture(scope="class")
    def result(self):
        return run_compound(tiny_compound())

    def test_run_is_deterministic(self, result):
        again = run_compound(tiny_compound())
        assert again.to_dict() == result.to_dict()

    def test_noise_straddles_the_attack(self, result):
        assert result.background_records_pre > 0
        assert result.background_records_post > 0

    def test_detection_survives_post_attack_noise(self, result):
        """The staged attack is still visible after the noise tail."""
        assert result.detected
        assert result.post_noise_detected
        assert result.post_noise_chain_trustworthy

    def test_result_round_trips(self, result):
        rebuilt = CompoundResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.spec_hash == tiny_compound().spec_hash()

    def test_attack_offset_moves_the_noise_split(self, result):
        early = run_compound(tiny_compound(attack_offset=0.25))
        total = result.background_records_pre + result.background_records_post
        early_total = early.background_records_pre + early.background_records_post
        assert early_total == total
        assert early.background_records_pre < result.background_records_pre
