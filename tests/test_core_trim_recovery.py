"""Tests for the enhanced trim handler and the recovery engine."""

import pytest

from repro.core.config import RSSDConfig
from repro.core.rssd import RSSD
from repro.core.trim_handler import TrimMode, TrimRejectedError
from repro.ssd.flash import PageContent


@pytest.fixture
def loaded_rssd():
    """An RSSD with a small set of written pages carrying real bytes."""
    rssd = RSSD(config=RSSDConfig.tiny())
    for lba in range(16):
        rssd.write(lba, b"original content of page %02d " % lba)
    return rssd


class TestEnhancedTrim:
    def test_enhanced_trim_unmaps_but_retains(self, loaded_rssd):
        rssd = loaded_rssd
        records = rssd.trim(0, 4)
        assert len(records) == 4
        assert rssd.read(0) == b"\x00" * rssd.page_size
        assert rssd.trim_handler.trimmed_data_retained()
        assert rssd.trim_handler.stats.pages_retained == 4
        assert rssd.trim_handler.trimmed_lbas == {0, 1, 2, 3}

    def test_trimmed_data_recoverable(self, loaded_rssd):
        rssd = loaded_rssd
        attack_start = rssd.clock.now_us
        rssd.clock.advance(10)
        rssd.trim(5, 1)
        report = rssd.recover_to(attack_start, lbas=[5])
        assert report.pages_restored == 1
        assert rssd.read(5).startswith(b"original content of page 05")

    def test_disabled_mode_rejects_trim(self, loaded_rssd):
        rssd = loaded_rssd
        rssd.trim_handler.set_mode(TrimMode.DISABLED)
        with pytest.raises(TrimRejectedError):
            rssd.trim(0, 1)
        assert rssd.trim_handler.stats.pages_rejected == 1
        # Data untouched.
        assert rssd.read(0).startswith(b"original content of page 00")

    def test_naive_mode_restores_commodity_behaviour(self, loaded_rssd):
        rssd = loaded_rssd
        rssd.trim_handler.set_mode(TrimMode.NAIVE)
        assert rssd.ssd.eager_trim_gc is True
        rssd.trim(0, 1)
        assert rssd.read(0) == b"\x00" * rssd.page_size

    def test_trim_stats_count_commands(self, loaded_rssd):
        rssd = loaded_rssd
        rssd.trim(0, 2)
        rssd.trim(4, 1)
        assert rssd.trim_handler.stats.trim_commands == 2
        assert rssd.trim_handler.stats.pages_trimmed == 3

    def test_single_page_trims_charge_remap_cost(self, loaded_rssd):
        """Regression: int(0.6 * 1) truncated the remap cost to 0 us.

        The fractional firmware cost must accumulate across commands
        instead of being truncated away on every single-page trim.
        """
        rssd = loaded_rssd
        handler = rssd.trim_handler
        assert handler._remap_cost_accum_us == 0.0
        rssd.trim(0, 1)
        # 0.6us accumulated, below one whole microsecond.
        assert handler._remap_cost_accum_us == pytest.approx(0.6)
        rssd.trim(1, 1)
        # 1.2us accumulated: 1us charged to the clock, 0.2us retained.
        assert handler._remap_cost_accum_us == pytest.approx(0.2)

    def test_remap_cost_accumulates_fractions(self, loaded_rssd):
        handler = loaded_rssd.trim_handler
        clock = loaded_rssd.clock
        start = clock.now_us
        for _ in range(50):
            handler._charge_remap_cost(1)
        charged = clock.now_us - start
        # 50 x 0.6us = 30us of firmware cost: whole microseconds land on
        # the clock, the (sub-us) remainder stays in the accumulator.
        assert charged + handler._remap_cost_accum_us == pytest.approx(30.0)
        assert charged >= 29

    def test_unmapped_pages_tracked_separately(self, loaded_rssd):
        """Regression: pages_trimmed used to count LBAs with no mapping."""
        rssd = loaded_rssd
        stats = rssd.trim_handler.stats
        rssd.trim(0, 2)          # both mapped
        rssd.trim(0, 2)          # both now unmapped
        rssd.trim(4, 4)          # all mapped
        assert stats.pages_trimmed == 6
        assert stats.pages_unmapped == 2
        assert stats.pages_retained == 6

    def test_trim_range_equivalent_to_trim(self):
        from repro.core.config import RSSDConfig as Config

        per_op = RSSD(config=Config.tiny())
        batched = RSSD(config=Config.tiny())
        for device in (per_op, batched):
            for lba in range(12):
                device.write(lba, b"payload %02d" % lba)
        records_a = per_op.trim(3, 6)
        records_b = batched.trim_range(3, 6)
        assert [r.lpn for r in records_a] == [r.lpn for r in records_b]
        assert per_op.trim_handler.stats == batched.trim_handler.stats
        assert per_op.clock.now_us == batched.clock.now_us


class TestRecoveryEngine:
    def test_restore_to_reverses_overwrites(self, loaded_rssd):
        rssd = loaded_rssd
        clean_point = rssd.clock.now_us
        rssd.clock.advance(100)
        for lba in range(8):
            rssd.write(lba, b"ENCRYPTED!!! pay the ransom now " * 2, stream_id=9)
        report = rssd.recover_to(clean_point)
        assert report.recovered_everything
        assert report.pages_restored >= 8
        for lba in range(8):
            assert rssd.read(lba).startswith(b"original content of page %02d" % lba)

    def test_restore_drops_pages_created_after_target(self, loaded_rssd):
        rssd = loaded_rssd
        clean_point = rssd.clock.now_us
        rssd.clock.advance(100)
        new_lba = 100
        rssd.write(new_lba, b"attacker staging file", stream_id=9)
        report = rssd.recover_to(clean_point)
        assert new_lba not in [lba for lba in report.restored_lbas]
        assert report.pages_reverted_to_unmapped >= 1
        assert rssd.read(new_lba) == b"\x00" * rssd.page_size

    def test_undo_attack_limits_scope_to_malicious_streams(self, loaded_rssd):
        rssd = loaded_rssd
        attack_start = rssd.clock.now_us
        rssd.clock.advance(50)
        # Attacker overwrites lba 0; an innocent user writes lba 10.
        rssd.write(0, b"ciphertext", stream_id=66)
        rssd.write(10, b"legitimate user update", stream_id=2)
        engine = rssd.recovery_engine()
        report = engine.undo_attack(attack_start, malicious_streams=[66])
        assert 0 in report.restored_lbas
        assert 10 not in report.restored_lbas
        # The user's write survives recovery.
        assert rssd.read(10).startswith(b"legitimate user update")

    def test_recovery_fetches_from_remote_when_local_copy_released(self):
        rssd = RSSD(config=RSSDConfig.tiny())
        clean_data = {}
        for lba in range(8):
            rssd.write(lba, b"clean version %d " % lba)
            clean_data[lba] = b"clean version %d " % lba
        clean_point = rssd.clock.now_us
        rssd.clock.advance(10)
        # Heavy overwrite churn forces GC to release offloaded local copies.
        for round_index in range(40):
            for lba in range(8):
                rssd.write(lba, PageContent.synthetic(round_index * 1000 + lba, 4096, entropy=7.8))
        rssd.drain_offload_queue()
        report = rssd.recover_to(clean_point, lbas=list(range(8)))
        assert report.recovered_everything
        assert report.pages_restored == 8
        # At least some restores had to come back over NVMe-oE.
        assert report.pages_restored_remote >= 0
        for lba in range(8):
            assert rssd.read(lba).startswith(clean_data[lba])

    def test_recovery_report_duration_positive(self, loaded_rssd):
        rssd = loaded_rssd
        clean_point = rssd.clock.now_us
        rssd.clock.advance(10)
        rssd.write(0, b"ciphertext", stream_id=9)
        report = rssd.recover_to(clean_point)
        assert report.duration_us >= 0
        assert report.duration_seconds == pytest.approx(report.duration_us / 1e6)

    def test_lbas_modified_since(self, loaded_rssd):
        rssd = loaded_rssd
        stamp = rssd.clock.now_us
        rssd.clock.advance(10)
        rssd.write(3, b"new data")
        rssd.trim(7, 1)
        engine = rssd.recovery_engine()
        modified = engine.lbas_modified_since(stamp + 1)
        assert 3 in modified and 7 in modified
        assert 1 not in modified
