"""Tests for the shared simulation primitives."""

import pytest

from repro.sim import (
    EventQueue,
    SimClock,
    US_PER_DAY,
    US_PER_SECOND,
    format_duration,
    percentile,
)


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now_us == 0

    def test_starts_at_given_time(self):
        assert SimClock(start_us=42).now_us == 42

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(start_us=-1)

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance(100)
        assert clock.now_us == 100

    def test_advance_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(500)
        assert clock.now_us == 500

    def test_advance_to_past_is_noop(self):
        clock = SimClock(start_us=1000)
        clock.advance_to(500)
        assert clock.now_us == 1000

    def test_now_seconds_and_days(self):
        clock = SimClock()
        clock.advance(US_PER_SECOND)
        assert clock.now_seconds == pytest.approx(1.0)
        clock.advance_to(US_PER_DAY)
        assert clock.now_days == pytest.approx(1.0)


class TestEventQueue:
    def test_events_run_in_timestamp_order(self):
        clock = SimClock()
        queue = EventQueue(clock)
        order = []
        queue.schedule(30, lambda: order.append("c"))
        queue.schedule(10, lambda: order.append("a"))
        queue.schedule(20, lambda: order.append("b"))
        executed = queue.run_until(100)
        assert executed == 3
        assert order == ["a", "b", "c"]
        assert clock.now_us == 100

    def test_ties_broken_by_insertion_order(self):
        clock = SimClock()
        queue = EventQueue(clock)
        order = []
        queue.schedule(10, lambda: order.append("first"))
        queue.schedule(10, lambda: order.append("second"))
        queue.run_until(10)
        assert order == ["first", "second"]

    def test_future_events_not_run(self):
        clock = SimClock()
        queue = EventQueue(clock)
        ran = []
        queue.schedule(50, lambda: ran.append(1))
        assert queue.run_until(10) == 0
        assert not ran
        assert len(queue) == 1

    def test_cannot_schedule_in_the_past(self):
        clock = SimClock(start_us=100)
        queue = EventQueue(clock)
        with pytest.raises(ValueError):
            queue.schedule_at(50, lambda: None)
        with pytest.raises(ValueError):
            queue.schedule(-1, lambda: None)

    def test_next_timestamp(self):
        clock = SimClock()
        queue = EventQueue(clock)
        assert queue.next_timestamp() is None
        queue.schedule(25, lambda: None)
        assert queue.next_timestamp() == 25


class TestFormatDuration:
    def test_microseconds(self):
        assert format_duration(500) == "500us"

    def test_milliseconds(self):
        assert format_duration(2_500) == "2.50ms"

    def test_seconds(self):
        assert format_duration(3 * US_PER_SECOND) == "3.00s"

    def test_days(self):
        assert format_duration(2 * US_PER_DAY) == "2.00days"


class TestPercentile:
    def test_empty_returns_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_median_of_even_list(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_p99_close_to_max(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 0.99) == pytest.approx(99.01)

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
