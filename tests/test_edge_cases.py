"""Edge-case and failure-injection tests across subsystems."""

import pytest

from repro.core.config import RSSDConfig
from repro.core.rssd import RSSD
from repro.defenses.flashguard import FlashGuardDefense
from repro.defenses.ssdinsider import SSDInsiderDefense
from repro.nvmeoe.remote import ObjectStore, StorageServer, TieredRemote
from repro.ssd.device import SSD
from repro.ssd.errors import CapacityExhaustedError, OutOfRangeError
from repro.ssd.flash import PageContent
from repro.ssd.geometry import SSDGeometry


def encrypted(tag):
    return PageContent.synthetic(tag, 4096, entropy=7.9, compress_ratio=0.98)


def normal(tag):
    return PageContent.synthetic(tag, 4096, entropy=3.2, compress_ratio=0.4)


class TestCapacityPressure:
    def test_plain_ssd_survives_sustained_full_device_overwrites(self):
        """Writing far more than the device size must never wedge a plain SSD."""
        ssd = SSD(geometry=SSDGeometry.tiny())
        working_set = ssd.capacity_pages // 2
        for round_index in range(8):
            for lba in range(working_set):
                ssd.write(lba, normal(round_index * 10_000 + lba))
        # Every live page still readable, WAF sane.
        for lba in range(working_set):
            assert ssd.read_content(lba) is not None
        assert 1.0 <= ssd.metrics.write_amplification < 5.0

    def test_rssd_survives_sustained_overwrites_without_data_loss(self):
        rssd = RSSD(config=RSSDConfig.tiny())
        working_set = rssd.capacity_pages // 3
        for round_index in range(6):
            for lba in range(working_set):
                rssd.write(lba, normal(round_index * 10_000 + lba))
        assert rssd.data_loss_pages == 0
        assert rssd.retention.stats.stale_pages_seen > working_set

    def test_filling_every_exported_page_once_is_fine(self):
        ssd = SSD(geometry=SSDGeometry.tiny())
        # The device can hold its full exported capacity of live data (the
        # over-provisioned blocks provide the GC headroom).
        for lba in range(0, ssd.capacity_pages, 4):
            ssd.write(lba, [normal(lba + i) for i in range(4)])
        assert ssd.ftl.mapped_pages == ssd.capacity_pages

    def test_hardware_defense_pinning_eventually_stalls_instead_of_losing_data(self):
        """FlashGuard-style pinning refuses to destroy retained data even if
        that means the device eventually refuses writes under a flood."""
        defense = FlashGuardDefense(geometry=SSDGeometry.tiny())
        device = defense.device
        # Build up retained (read-then-overwritten) pages.
        for lba in range(48):
            device.write(lba, normal(lba))
        attack_start = defense.clock.now_us + 1
        defense.clock.advance(10)
        for lba in range(48):
            device.read(lba)
            device.write(lba, encrypted(1000 + lba))
        # Flood with new data until the device either absorbs it or stalls.
        stalled = False
        try:
            for lba in range(48, device.capacity_pages):
                device.write(lba, encrypted(5000 + lba))
        except CapacityExhaustedError:
            stalled = True
        # Either way, the retained pre-attack versions are still available.
        recovered = sum(
            1 for lba in range(48) if defense.pre_attack_version(lba, attack_start) is not None
        )
        assert recovered == 48
        assert stalled or device.ftl.stale_pages > 0

    def test_best_effort_defense_sheds_retained_data_under_the_same_flood(self):
        defense = SSDInsiderDefense(geometry=SSDGeometry.tiny())
        device = defense.device
        for lba in range(48):
            device.write(lba, normal(lba))
        attack_start = defense.clock.now_us + 1
        defense.clock.advance(10)
        for lba in range(48):
            device.read(lba)
            device.write(lba, encrypted(1000 + lba))
        try:
            for lba in range(48, device.capacity_pages):
                device.write(lba, encrypted(5000 + lba))
        except CapacityExhaustedError:
            pass
        recovered = sum(
            1 for lba in range(48) if defense.pre_attack_version(lba, attack_start) is not None
        )
        # The small undo buffer yields under pressure: victim data is lost.
        assert recovered < 48
        assert defense.policy.evicted_count > 0


class TestRemoteTierCapacity:
    def test_rssd_spills_to_cloud_when_storage_server_fills(self):
        config = RSSDConfig(
            geometry=SSDGeometry.tiny(),
            storage_server_capacity_bytes=64 * 1024,  # deliberately tiny
        )
        rssd = RSSD(config=config)
        for round_index in range(10):
            for lba in range(32):
                rssd.write(lba, normal(round_index * 100 + lba))
        rssd.drain_offload_queue()
        assert rssd.remote.server.stored_bytes <= config.storage_server_capacity_bytes
        assert rssd.remote.cloud.object_count > 0
        assert rssd.data_loss_pages == 0

    def test_tiered_remote_counts_are_consistent(self):
        remote = TieredRemote(server=StorageServer(capacity_bytes=10_000), cloud=ObjectStore())
        assert remote.stored_bytes == 0
        assert remote.stored_entries == 0


class TestAddressingEdges:
    def test_first_and_last_lba_usable(self):
        ssd = SSD(geometry=SSDGeometry.tiny())
        last = ssd.capacity_pages - 1
        ssd.write(0, normal(1))
        ssd.write(last, normal(2))
        assert ssd.read_content(0).fingerprint == normal(1).fingerprint
        assert ssd.read_content(last).fingerprint == normal(2).fingerprint

    def test_zero_page_read_rejected_only_when_out_of_range(self):
        ssd = SSD(geometry=SSDGeometry.tiny())
        with pytest.raises(OutOfRangeError):
            ssd.read(-1)
        with pytest.raises(OutOfRangeError):
            ssd.trim(ssd.capacity_pages, 1)

    def test_rssd_trim_of_never_written_range_is_harmless(self):
        rssd = RSSD(config=RSSDConfig.tiny())
        records = rssd.trim(10, 4)
        assert records == []
        assert rssd.oplog.total_entries == 1  # the trim itself is still logged


class TestRecoveryEdgeCases:
    def test_recovery_with_no_damage_is_a_noop(self):
        rssd = RSSD(config=RSSDConfig.tiny())
        rssd.write(0, b"data")
        report = rssd.recover_to(rssd.clock.now_us)
        assert report.pages_restored == 0
        assert report.pages_unrecoverable == 0

    def test_recovery_scoped_to_explicit_lbas_only(self):
        rssd = RSSD(config=RSSDConfig.tiny())
        rssd.write(0, b"keep me original")
        rssd.write(1, b"also original")
        clean = rssd.clock.now_us
        rssd.clock.advance(10)
        rssd.write(0, b"encrypted!", stream_id=9)
        rssd.write(1, b"encrypted!", stream_id=9)
        report = rssd.recover_to(clean, lbas=[0])
        assert report.pages_restored == 1
        assert rssd.read(0).startswith(b"keep me original")
        assert rssd.read(1).startswith(b"encrypted!")

    def test_undo_attack_with_no_malicious_ops_restores_nothing(self):
        rssd = RSSD(config=RSSDConfig.tiny())
        rssd.write(0, b"data")
        report = rssd.recovery_engine().undo_attack(0, malicious_streams=[999])
        assert report.pages_restored == 0
        assert report.pages_examined == 0
