"""Tests for the host substrate: block device, file system, processes, scheduler."""

import pytest

from repro.host.blockdev import HostBlockDevice
from repro.host.filesystem import FileSystemError, SimpleFS
from repro.host.process import IOProcess, Privilege, ProcessRegistry
from repro.host.scheduler import IOScheduler
from repro.workloads.records import TraceOp, TraceRecord


@pytest.fixture
def blockdev(ssd):
    return HostBlockDevice(ssd, stream_id=1)


@pytest.fixture
def fs(blockdev):
    return SimpleFS(blockdev)


class TestHostBlockDevice:
    def test_aligned_roundtrip(self, blockdev):
        data = b"A" * blockdev.page_size
        blockdev.write_bytes(0, data)
        assert blockdev.read_bytes(0, len(data)) == data

    def test_unaligned_write_preserves_surrounding_bytes(self, blockdev):
        page = blockdev.page_size
        blockdev.write_bytes(0, b"\xaa" * page)
        blockdev.write_bytes(100, b"hello")
        read_back = blockdev.read_bytes(0, page)
        assert read_back[100:105] == b"hello"
        assert read_back[:100] == b"\xaa" * 100
        assert read_back[105:] == b"\xaa" * (page - 105)

    def test_cross_page_write(self, blockdev):
        page = blockdev.page_size
        data = bytes(range(256)) * ((page * 2) // 256 + 1)
        data = data[: page + 500]
        blockdev.write_bytes(page // 2, data)
        assert blockdev.read_bytes(page // 2, len(data)) == data

    def test_out_of_range_rejected(self, blockdev):
        with pytest.raises(ValueError):
            blockdev.read_bytes(blockdev.capacity_bytes - 10, 100)
        with pytest.raises(ValueError):
            blockdev.write_bytes(-1, b"data")

    def test_empty_write_is_noop(self, blockdev):
        assert blockdev.write_bytes(0, b"") == 0

    def test_trim_bytes_trims_only_fully_covered_pages(self, blockdev, ssd):
        page = blockdev.page_size
        blockdev.write_bytes(0, b"\xbb" * (page * 3))
        blockdev.trim_bytes(page // 2, 2 * page)
        # Only the single fully covered page is trimmed.
        assert ssd.read_content(1) is None
        assert ssd.read_content(0) is not None
        assert ssd.read_content(2) is not None

    def test_stream_id_propagated(self, ssd):
        seen = []

        class Observer:
            def on_host_op(self, op):
                seen.append(op.stream_id)

        ssd.add_observer(Observer())
        blockdev = HostBlockDevice(ssd, stream_id=42)
        blockdev.write_bytes(0, b"data")
        assert set(seen) == {42}


class TestSimpleFS:
    def test_create_read_roundtrip(self, fs):
        fs.create_file("report.txt", b"quarterly numbers")
        assert fs.read_file("report.txt") == b"quarterly numbers"
        assert fs.exists("report.txt")
        assert fs.file_count == 1

    def test_duplicate_create_rejected(self, fs):
        fs.create_file("a.txt", b"x")
        with pytest.raises(FileSystemError):
            fs.create_file("a.txt", b"y")

    def test_empty_file_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.create_file("empty.txt", b"")

    def test_missing_file_errors(self, fs):
        with pytest.raises(FileSystemError):
            fs.read_file("ghost.txt")
        with pytest.raises(FileSystemError):
            fs.delete_file("ghost.txt")
        with pytest.raises(FileSystemError):
            fs.stat("ghost.txt")

    def test_overwrite_in_place(self, fs):
        fs.create_file("doc.txt", b"original content here")
        fs.overwrite_file("doc.txt", b"ENCRYPTED?!          ")
        assert fs.read_file("doc.txt") == b"ENCRYPTED?!          "

    def test_overwrite_growing_file_reallocates(self, fs):
        fs.create_file("doc.txt", b"small")
        big = b"B" * (fs.blockdev.page_size * 3)
        fs.overwrite_file("doc.txt", big)
        assert fs.read_file("doc.txt") == big

    def test_delete_frees_extent_for_reuse(self, fs):
        fs.create_file("temp.bin", b"T" * fs.blockdev.page_size * 2)
        free_before = fs.free_pages_remaining()
        fs.delete_file("temp.bin")
        assert fs.free_pages_remaining() == free_before + 2
        # The freed extent is reused by the next allocation.
        fs.create_file("new.bin", b"N" * fs.blockdev.page_size * 2)
        assert fs.read_file("new.bin") == b"N" * fs.blockdev.page_size * 2

    def test_delete_with_trim_issues_trim_to_device(self, fs, ssd):
        fs.create_file("secret.txt", b"S" * fs.blockdev.page_size)
        lbas = fs.file_lbas("secret.txt")
        fs.delete_file("secret.txt", trim=True)
        assert ssd.metrics.host_trims == 1
        assert all(ssd.read_content(lba) is None for lba in lbas)

    def test_rename(self, fs):
        fs.create_file("old.txt", b"data")
        fs.rename_file("old.txt", "new.txt")
        assert not fs.exists("old.txt")
        assert fs.read_file("new.txt") == b"data"
        fs.create_file("other.txt", b"x")
        with pytest.raises(FileSystemError):
            fs.rename_file("new.txt", "other.txt")

    def test_no_space_raises(self, fs):
        huge = b"Z" * (fs.blockdev.capacity_bytes + fs.blockdev.page_size)
        with pytest.raises(FileSystemError):
            fs.create_file("huge.bin", huge)

    def test_populate_creates_requested_files(self, fs):
        names = fs.populate(10, 8192)
        assert len(names) == 10
        assert fs.file_count == 10
        for name in names:
            assert len(fs.read_file(name)) == 8192

    def test_file_lbas_match_reads(self, fs, ssd):
        fs.create_file("doc.txt", b"D" * (fs.blockdev.page_size * 2))
        lbas = fs.file_lbas("doc.txt")
        assert len(lbas) == 2
        for lba in lbas:
            assert ssd.read_content(lba) is not None


class TestProcessRegistry:
    def test_spawn_assigns_unique_streams(self):
        registry = ProcessRegistry()
        first = registry.spawn("user")
        second = registry.spawn("backup", privilege=Privilege.ADMIN)
        assert first.stream_id != second.stream_id
        assert len(registry) == 2

    def test_malicious_streams_tracked(self):
        registry = ProcessRegistry()
        registry.spawn("user")
        evil = registry.spawn("ransomware", is_malicious=True)
        assert registry.malicious_streams() == [evil.stream_id]

    def test_kill_removes_process(self):
        registry = ProcessRegistry()
        victim = registry.spawn("backup-agent")
        assert registry.kill(victim.pid) is victim
        assert registry.kill(victim.pid) is None
        assert len(registry) == 1 - 1 + 0 or len(registry) == 0

    def test_lookup_by_stream(self):
        registry = ProcessRegistry()
        process = registry.spawn("user")
        assert registry.by_stream(process.stream_id) is process
        assert registry.by_stream(9999) is None

    def test_retagging_records(self):
        process = IOProcess(pid=1, name="p", stream_id=9)
        records = [TraceRecord(0, TraceOp.WRITE, 0, 1, stream_id=0)]
        retagged = process.records_with_stream(records)
        assert retagged[0].stream_id == 9


class TestIOScheduler:
    def test_merge_orders_by_timestamp(self):
        scheduler = IOScheduler()
        user = [TraceRecord(10, TraceOp.WRITE, 0, 1, stream_id=1), TraceRecord(30, TraceOp.READ, 0, 1, stream_id=1)]
        attacker = [TraceRecord(20, TraceOp.WRITE, 5, 1, stream_id=2)]
        merged = scheduler.merge([user, attacker])
        assert [record.timestamp_us for record in merged] == [10, 20, 30]

    def test_shares(self):
        scheduler = IOScheduler()
        records = [
            TraceRecord(i, TraceOp.WRITE, i, 1, stream_id=1 if i % 4 else 2)
            for i in range(20)
        ]
        shares = scheduler.shares(records)
        assert shares[1].records + shares[2].records == 20
        assert shares[1].fraction + shares[2].fraction == pytest.approx(1.0)

    def test_interleave_ratio_of_hidden_stream(self):
        scheduler = IOScheduler()
        records = []
        for i in range(30):
            stream = 2 if i % 10 == 5 else 1
            records.append(TraceRecord(i, TraceOp.WRITE, i, 1, stream_id=stream))
        # Every attacker request is surrounded by user requests.
        assert scheduler.interleave_ratio(records, suspect_stream=2) == 1.0

    def test_invalid_queue_depth(self):
        with pytest.raises(ValueError):
            IOScheduler(max_queue_depth=0)
