"""Tests for the experiment harnesses used by the benchmark suite.

These run the same code paths as the benchmarks, at reduced scale, and
assert the *shape* of the results the paper reports.
"""

import pytest

from repro.analysis import experiments as ex
from repro.ssd.geometry import SSDGeometry


class TestPerformanceOverhead:
    def test_overhead_below_one_percent(self):
        rows = ex.run_performance_overhead(duration_s=0.3)
        assert rows
        for row in rows:
            assert row.write_overhead < 0.01, row.job
            assert row.read_overhead < 0.01, row.job

    def test_latencies_are_positive(self):
        rows = ex.run_performance_overhead(duration_s=0.2)
        for row in rows:
            if "write" in row.job or "mix" in row.job:
                assert row.rssd_write_latency_us > 0


class TestLifetimeImpact:
    def test_waf_overhead_is_small(self):
        rows = ex.run_lifetime_experiment(volumes=["hm"], duration_s=0.05)
        assert rows
        for row in rows:
            assert row.baseline_waf >= 1.0
            assert row.rssd_waf >= 1.0
            assert row.waf_overhead < 0.10
            assert row.erase_overhead < 0.15


class TestRecoveryExperiment:
    def test_all_attacks_fully_recovered_on_rssd(self):
        rows = ex.run_recovery_experiment(victim_files=12)
        attacks = {row.attack for row in rows}
        assert attacks == {"classic", "gc-attack", "timing-attack", "trimming-attack"}
        for row in rows:
            assert row.pages_unrecoverable == 0, row.attack
            assert row.recovered_fraction == 1.0
            assert row.files_fully_recovered == row.files_total
            assert row.recovery_seconds < 60.0


class TestForensicsExperiment:
    def test_chain_verified_and_attacker_identified(self):
        rows = ex.run_forensics_experiment(background_ops_list=[100, 800])
        assert len(rows) == 2
        for row in rows:
            assert row.chain_verified
            assert row.attacker_identified
        # Reconstruction cost grows with log size.
        assert rows[1].log_entries > rows[0].log_entries
        assert rows[1].reconstruction_seconds >= rows[0].reconstruction_seconds


class TestOffloadAblation:
    def test_compression_saves_bandwidth(self):
        rows = ex.run_offload_ablation(volumes=["hm", "email"], duration_s=0.05)
        assert len(rows) == 2
        for row in rows:
            assert row.pages_offloaded > 0
            assert 0.0 < row.compression_ratio < 1.0
            assert row.compressed_mb <= row.raw_mb

    def test_more_compressible_volume_ships_fewer_bytes_per_page(self):
        rows = {row.volume: row for row in ex.run_offload_ablation(volumes=["hm", "email"], duration_s=0.05)}
        # hm's data is more compressible than email's (per the profiles).
        assert rows["hm"].compression_ratio < rows["email"].compression_ratio


class TestTrimAblation:
    def test_enhanced_trim_is_the_only_mode_with_full_recovery_and_trim_support(self):
        rows = {row.mode: row for row in ex.run_trim_ablation(victim_files=10)}
        assert rows["enhanced"].recovered_fraction == 1.0
        assert rows["enhanced"].pages_trimmed > 0
        assert rows["naive"].recovered_fraction < 0.5
        assert rows["disabled"].trim_rejected


class TestDetectionAblation:
    def test_remote_detection_strictly_more_capable(self):
        rows = {row.attack: row for row in ex.run_detection_ablation()}
        # Remote (offloaded) detection catches everything, including the
        # paced attack the local window detector misses.
        for attack, row in rows.items():
            assert row.remote_detected, attack
            assert row.remote_identified_attacker, attack
        assert not rows["timing-attack"].local_detected
        assert rows["classic"].local_detected
