"""Real-trace loaders: MSR CSV, FIU IODedup, fio iolog (satellite formats)."""

from __future__ import annotations

import pytest

from repro.workloads import (
    TraceParseError,
    load_fio_iolog,
    load_fiu_trace,
    load_msr_trace,
)
from repro.workloads.records import TraceOp


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return str(path)


class TestMsrLoader:
    GOOD = (
        "128166372003061629,hm,0,Write,8192,8192,559\n"
        "128166372013061629,hm,0,Read,0,512,100\n"
    )

    def test_loads_the_published_csv_format(self, tmp_path):
        records = load_msr_trace(write(tmp_path, "t.csv", self.GOOD))
        assert [r.op for r in records] == [TraceOp.WRITE, TraceOp.READ]
        # FILETIME ticks are 100ns: 10_000_000 ticks -> 1_000_000 us.
        assert records[0].timestamp_us == 0
        assert records[1].timestamp_us == 1_000_000
        # Offsets/sizes are bytes: 8192/4096 -> lba 2, 2 pages; 512 bytes
        # rounds up to one page.
        assert (records[0].lba, records[0].npages) == (2, 2)
        assert (records[1].lba, records[1].npages) == (0, 1)

    def test_empty_file_is_an_empty_trace(self, tmp_path):
        assert load_msr_trace(write(tmp_path, "e.csv", "")) == []

    def test_out_of_order_timestamps_clamp_at_zero(self, tmp_path):
        text = (
            "128166372013061629,hm,0,Write,0,4096,1\n"
            "128166372003061629,hm,0,Write,4096,4096,1\n"
        )
        records = load_msr_trace(write(tmp_path, "t.csv", text))
        assert [r.timestamp_us for r in records] == [0, 0]

    @pytest.mark.parametrize(
        "line",
        [
            "not-a-timestamp,hm,0,Write,0,4096,1",
            "1,hm,0,Erase,0,4096,1",
            "1,hm,0,Write,-4096,4096,1",
            "1,hm,0,Write,0,4096",
        ],
    )
    def test_strict_mode_raises_with_path_and_line(self, tmp_path, line):
        path = write(tmp_path, "bad.csv", self.GOOD + line + "\n")
        with pytest.raises(TraceParseError) as excinfo:
            load_msr_trace(path)
        assert excinfo.value.path == path
        assert excinfo.value.line_no == 3
        assert f"{path}:3" in str(excinfo.value)

    def test_lenient_mode_keeps_the_intact_prefix(self, tmp_path):
        path = write(tmp_path, "bad.csv", self.GOOD + "truncated,li\n")
        records = load_msr_trace(path, strict=False)
        assert len(records) == 2

    def test_max_records_caps_the_load(self, tmp_path):
        path = write(tmp_path, "t.csv", self.GOOD)
        assert len(load_msr_trace(path, max_records=1)) == 1

    def test_page_size_rescales_addresses(self, tmp_path):
        path = write(tmp_path, "t.csv", self.GOOD)
        records = load_msr_trace(path, page_size=8192)
        assert (records[0].lba, records[0].npages) == (1, 1)


class TestFiuLoader:
    GOOD = (
        "0.0 1234 syslogd 8 16 W hashA hashB\n"
        "1.5 1234 syslogd 0 1 R\n"
    )

    def test_loads_the_published_format(self, tmp_path):
        records = load_fiu_trace(write(tmp_path, "t.blk", self.GOOD))
        assert [r.op for r in records] == [TraceOp.WRITE, TraceOp.READ]
        # Fractional seconds -> microseconds relative to the first line.
        assert records[1].timestamp_us == 1_500_000
        # 512-byte sectors, 8 per 4 KiB page: sector 8 -> lba 1, 16
        # sectors -> 2 pages; 1 sector rounds up to one page.
        assert (records[0].lba, records[0].npages) == (1, 2)
        assert (records[1].lba, records[1].npages) == (0, 1)

    def test_empty_file_is_an_empty_trace(self, tmp_path):
        assert load_fiu_trace(write(tmp_path, "e.blk", "")) == []

    @pytest.mark.parametrize(
        "line",
        [
            "nan 1 p 0 1 W",
            "inf 1 p 0 1 W",
            "0.0 1 p 0 1 Z",
            "0.0 1 p -8 1 W",
            "0.0 1 p 0 1",
        ],
    )
    def test_strict_mode_raises_with_location(self, tmp_path, line):
        path = write(tmp_path, "bad.blk", line + "\n")
        with pytest.raises(TraceParseError) as excinfo:
            load_fiu_trace(path)
        assert excinfo.value.line_no == 1

    def test_lenient_mode_skips_malformed_lines(self, tmp_path):
        path = write(tmp_path, "bad.blk", "garbage\n" + self.GOOD)
        assert len(load_fiu_trace(path, strict=False)) == 2

    def test_max_records_caps_the_load(self, tmp_path):
        path = write(tmp_path, "t.blk", self.GOOD)
        assert len(load_fiu_trace(path, max_records=1)) == 1


class TestFioLoader:
    V2 = (
        "fio version 2 iolog\n"
        "/dev/sdb add\n"
        "/dev/sdb open\n"
        "/dev/sdb write 0 8192\n"
        "/dev/sdb read 8192 4096\n"
        "/dev/sdb trim 16384 4096\n"
        "/dev/sdb datasync\n"
        "/dev/sdb close\n"
    )
    V3 = (
        "fio version 3 iolog\n"
        "10 /dev/sdb write 0 4096\n"
        "12 /dev/sdb sync\n"
    )

    def test_v2_synthesizes_timestamps_in_issue_order(self, tmp_path):
        records = load_fio_iolog(write(tmp_path, "v2.log", self.V2))
        assert [r.op for r in records] == [
            TraceOp.WRITE,
            TraceOp.READ,
            TraceOp.TRIM,
            TraceOp.FLUSH,
        ]
        assert [r.timestamp_us for r in records] == [0, 100, 200, 300]
        assert (records[0].lba, records[0].npages) == (0, 2)
        # Flushes carry no pages.
        assert records[3].npages == 0

    def test_v3_converts_millisecond_timestamps(self, tmp_path):
        records = load_fio_iolog(write(tmp_path, "v3.log", self.V3))
        assert [r.timestamp_us for r in records] == [0, 2000]
        assert records[1].op is TraceOp.FLUSH

    def test_missing_banner_is_refused(self, tmp_path):
        path = write(tmp_path, "no.log", "/dev/sdb write 0 4096\n")
        with pytest.raises(TraceParseError, match="banner"):
            load_fio_iolog(path)

    def test_empty_file_is_an_empty_trace(self, tmp_path):
        assert load_fio_iolog(write(tmp_path, "e.log", "")) == []

    @pytest.mark.parametrize(
        "line",
        [
            "/dev/sdb explode 0 4096",
            "/dev/sdb write 0",
            "/dev/sdb write -1 4096",
        ],
    )
    def test_strict_mode_raises_on_malformed_lines(self, tmp_path, line):
        path = write(tmp_path, "bad.log", "fio version 2 iolog\n" + line + "\n")
        with pytest.raises(TraceParseError) as excinfo:
            load_fio_iolog(path)
        assert excinfo.value.line_no == 2

    def test_lenient_mode_skips_malformed_lines(self, tmp_path):
        text = "fio version 2 iolog\n/dev/sdb explode\n/dev/sdb write 0 4096\n"
        records = load_fio_iolog(write(tmp_path, "bad.log", text), strict=False)
        assert len(records) == 1
        # Skipped lines do not consume synthesized-timestamp slots.
        assert records[0].timestamp_us == 0

    def test_default_interval_is_adjustable(self, tmp_path):
        records = load_fio_iolog(
            write(tmp_path, "v2.log", self.V2), default_interval_us=250
        )
        assert [r.timestamp_us for r in records] == [0, 250, 500, 750]

    def test_max_records_caps_the_load(self, tmp_path):
        assert len(load_fio_iolog(write(tmp_path, "v2.log", self.V2), max_records=2)) == 2
