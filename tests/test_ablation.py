"""Ablation framework: registry, config, spec field, study, metrics, CLI.

Includes the acceptance gates ISSUE 7 pins down:

* the tiny study is bit-identical across the sequential, thread and
  process backends and reproduces ``tests/golden/ablation_tiny.json``;
* specs without an ablation hash and serialize exactly as they did
  before the field existed (regression-pinned hashes);
* ``repro campaign --filter`` / ``repro roc --filter`` with patterns
  that match nothing exit 1 and name the unmatched patterns.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.ablation import (
    FEATURES,
    AblationArtifact,
    AblationConfig,
    AblationError,
    AblationStudy,
    apply_ablation,
    calculate_metrics,
    compare_configs,
    feature_names,
    render_impact_csv,
    render_impact_markdown,
    run_ablation_cell,
    validate_features,
)
from repro.api import ScenarioSpec, Session, SpecValidationError

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_TINY = GOLDEN_DIR / "ablation_tiny.json"


# ---------------------------------------------------------------------------
# Feature registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_registry_names_every_paper_component(self):
        assert feature_names() == sorted(FEATURES)
        assert set(feature_names()) == {
            "selective-retention",
            "remote-offload",
            "enhanced-trim",
            "local-detector",
            "remote-detector",
            "gc-policy",
            "retention-eviction",
        }
        for feature in FEATURES.values():
            assert feature.summary
            assert feature.paper_component

    def test_validate_features_canonicalizes(self):
        assert validate_features(["remote-offload", "enhanced-trim"]) == (
            "enhanced-trim",
            "remote-offload",
        )
        assert validate_features(["enhanced-trim", "enhanced-trim"]) == (
            "enhanced-trim",
        )
        assert validate_features(()) == ()

    def test_validate_features_rejects_unknown_names(self):
        with pytest.raises(AblationError, match="unknown ablation features"):
            validate_features(["warp-drive"])

    def test_apply_ablation_requires_an_rssd_defense(self):
        from repro.defenses.unprotected import UnprotectedSSD
        from repro.sim import SimClock
        from repro.ssd.geometry import SSDGeometry

        defense = UnprotectedSSD(SSDGeometry.tiny(), SimClock())
        with pytest.raises(AblationError, match="RSSD"):
            apply_ablation(defense, ("enhanced-trim",))
        # The empty ablation is a no-op on any defense.
        apply_ablation(defense, ())

    def test_apply_ablation_toggles_the_components(self):
        spec = ScenarioSpec(
            ablation=(
                "selective-retention",
                "remote-offload",
                "enhanced-trim",
                "local-detector",
                "remote-detector",
                "retention-eviction",
            )
        )
        session = Session(spec)
        session.provision()
        rssd = session.defense.rssd
        from repro.core.trim_handler import TrimMode

        assert rssd.retention.retain_overwrites is False
        assert rssd.retention.retain_trimmed is False
        assert rssd.retention.evict_under_pressure is True
        assert rssd.offload.enabled is False
        assert rssd.trim_handler.mode is TrimMode.NAIVE
        assert session.defense.local_detection_enabled is False
        assert session.defense.remote_detection_enabled is False


# ---------------------------------------------------------------------------
# AblationConfig
# ---------------------------------------------------------------------------


class TestConfig:
    def test_label_is_csv_safe(self):
        config = AblationConfig(disabled=("remote-offload", "enhanced-trim"))
        assert config.label == "no-enhanced-trim+no-remote-offload"
        assert "," not in config.label
        assert AblationConfig.full().label == "full"

    def test_without_and_is_enabled(self):
        config = AblationConfig.without("gc-policy")
        assert not config.is_enabled("gc-policy")
        assert config.is_enabled("enhanced-trim")

    def test_drop_one_sweep(self):
        configs = AblationConfig.sweep(("enhanced-trim", "remote-offload"))
        assert [c.label for c in configs] == [
            "full",
            "no-enhanced-trim",
            "no-remote-offload",
        ]

    def test_power_set_sweep(self):
        configs = AblationConfig.sweep(
            ("enhanced-trim", "remote-offload"), mode="power-set"
        )
        assert [c.label for c in configs] == [
            "full",
            "no-enhanced-trim",
            "no-remote-offload",
            "no-enhanced-trim+no-remote-offload",
        ]


# ---------------------------------------------------------------------------
# ScenarioSpec forward/backward compatibility
# ---------------------------------------------------------------------------


class TestSpecCompat:
    #: Pre-PR-7 pinned hashes: the ablation field must not disturb them.
    DEFAULT_SPEC_HASH = (
        "c440c3931bfb43fb5c3a3e98203c03a2c1d3d5d7b201bb60c70982330d768f88"
    )
    TRIM_SPEC_HASH = (
        "f91236a993b6d7d8370f6ccc5e0b8c6046fb508a6a4bed0df5c1c72a7f1c12b7"
    )

    def test_no_ablation_specs_hash_identically_to_pre_pr7(self):
        assert ScenarioSpec().spec_hash() == self.DEFAULT_SPEC_HASH
        spec = ScenarioSpec(
            defense="RSSD",
            attack="trimming-attack",
            workload="idle",
            device="tiny",
            victim_files=8,
            user_activity_hours=2.0,
            seed=101,
        )
        assert spec.spec_hash() == self.TRIM_SPEC_HASH

    def test_old_json_without_ablation_still_loads(self):
        payload = json.loads(ScenarioSpec().to_json())
        assert payload["version"] == 1 and "ablation" not in payload
        rebuilt = ScenarioSpec.from_dict(payload)
        assert rebuilt.ablation == ()
        assert rebuilt.to_json() == ScenarioSpec().to_json()

    def test_ablated_spec_round_trips(self):
        spec = ScenarioSpec(ablation=("remote-offload", "enhanced-trim"))
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.ablation == ("enhanced-trim", "remote-offload")
        assert rebuilt.to_json() == spec.to_json()

    def test_ablation_changes_hash_but_not_scenario_key(self):
        plain = ScenarioSpec()
        ablated = ScenarioSpec(ablation=("enhanced-trim",))
        assert ablated.spec_hash() != plain.spec_hash()
        assert ablated.scenario_key == plain.scenario_key
        # Identical rng streams: deltas are attributable to the toggle.
        assert ablated.resolved_env_seed == plain.resolved_env_seed
        assert ablated.resolved_attack_seed == plain.resolved_attack_seed

    def test_spec_rejects_unknown_ablation_features(self):
        with pytest.raises(ValueError, match="unknown ablation features"):
            ScenarioSpec(ablation=("flux-capacitor",))

    def test_validation_error_names_field_and_version(self):
        payload = ScenarioSpec().to_dict()
        payload["version"] = 99
        with pytest.raises(SpecValidationError) as excinfo:
            ScenarioSpec.from_dict(payload)
        assert excinfo.value.version == 99
        assert excinfo.value.field is None

        payload = ScenarioSpec().to_dict()
        payload["gpu_count"] = 8
        with pytest.raises(SpecValidationError) as excinfo:
            ScenarioSpec.from_dict(payload)
        assert excinfo.value.field == "gpu_count"

        payload = ScenarioSpec(ablation=("enhanced-trim",)).to_dict()
        payload["ablation"] = "enhanced-trim"
        with pytest.raises(SpecValidationError) as excinfo:
            ScenarioSpec.from_dict(payload)
        assert excinfo.value.field == "ablation"

    def test_ablated_specs_cannot_become_campaign_cells(self):
        with pytest.raises(ValueError, match="ablation"):
            ScenarioSpec(ablation=("enhanced-trim",)).to_cell()


# ---------------------------------------------------------------------------
# AblationStudy: determinism and golden
# ---------------------------------------------------------------------------


class TestStudy:
    def test_tiny_study_shape(self):
        study = AblationStudy.tiny()
        assert len(study.specs()) == 8
        labels = [config.label for config in study.configs]
        assert labels[0] == "full" and len(labels) == 4

    def test_study_rejects_bad_inputs(self):
        base = ScenarioSpec()
        with pytest.raises(ValueError, match="at least one feature"):
            AblationStudy(base_spec=base, features=())
        with pytest.raises(ValueError, match="sweep mode"):
            AblationStudy(base_spec=base, features=("gc-policy",), mode="random")

    def test_study_normalizes_the_base_spec(self):
        base = ScenarioSpec(ablation=("gc-policy",), env_seed=1, seed=9)
        study = AblationStudy(base_spec=base, features=("enhanced-trim",))
        assert study.base_spec.ablation == ()
        assert study.base_spec.env_seed is None

    def test_artifact_is_bit_identical_across_backends(self):
        study = AblationStudy.tiny()
        sequential = study.run(backend="sequential").to_json()
        threaded = study.run(backend="thread", jobs=4).to_json()
        process = study.run(backend="process", jobs=2).to_json()
        assert sequential == threaded == process

    def test_tiny_study_reproduces_golden_artifact(self, update_golden):
        artifact = AblationStudy.tiny().run(backend="sequential")
        text = artifact.to_json()
        if update_golden:
            GOLDEN_DIR.mkdir(exist_ok=True)
            GOLDEN_TINY.write_text(text, encoding="utf-8")
            pytest.skip(f"golden artifact rewritten: {GOLDEN_TINY}")
        assert GOLDEN_TINY.exists(), (
            "golden artifact missing; run pytest tests/test_ablation.py "
            "--update-golden to create it"
        )
        stored = GOLDEN_TINY.read_text(encoding="utf-8")
        if text != stored:
            differences = artifact.diff(AblationArtifact.from_json(stored))
            pytest.fail(
                "ablation artifact diverged from tests/golden/ablation_tiny.json "
                "(run --update-golden if intentional):\n" + "\n".join(differences)
            )

    def test_golden_artifact_shows_component_deltas(self):
        artifact = AblationArtifact.load(str(GOLDEN_TINY))
        assert artifact.cell_keys == sorted(artifact.cell_keys)
        full = artifact.cell("RSSD/trimming-attack/office-edit/tiny/full")
        no_trim = artifact.cell(
            "RSSD/trimming-attack/office-edit/tiny/no-enhanced-trim"
        )
        assert full.recovery_fraction > no_trim.recovery_fraction
        no_offload = artifact.cell(
            "RSSD/classic/office-edit/tiny/no-remote-offload"
        )
        assert no_offload.pages_offloaded_remote == 0
        assert artifact.cell("RSSD/classic/office-edit/tiny/full").pages_offloaded_remote > 0

    def test_artifact_refuses_newer_versions(self):
        artifact = AblationArtifact.load(str(GOLDEN_TINY))
        payload = artifact.to_dict()
        payload["version"] = artifact.version + 1
        with pytest.raises(ValueError, match="newer than supported"):
            AblationArtifact.from_dict(payload)

    def test_artifact_diff_is_field_precise(self):
        artifact = AblationArtifact.load(str(GOLDEN_TINY))
        tweaked = AblationArtifact.from_json(artifact.to_json())
        cell = tweaked.cells[0]
        tweaked.cells[0] = type(cell).from_dict(
            {**cell.to_dict(), "recovery_fraction": 0.123}
        )
        differences = tweaked.diff(artifact)
        assert len(differences) == 1 and "recovery_fraction" in differences[0]
        assert artifact.diff(AblationArtifact.from_json(artifact.to_json())) == []

    def test_run_ablation_cell_matches_the_golden(self):
        spec = replace(
            AblationStudy.tiny().base_spec,
            attack="trimming-attack",
            ablation=("enhanced-trim",),
        )
        cell = run_ablation_cell(spec)
        golden = AblationArtifact.load(str(GOLDEN_TINY)).cell(cell.cell_key)
        assert cell == golden


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    @pytest.fixture(scope="class")
    def artifact(self):
        return AblationArtifact.load(str(GOLDEN_TINY))

    def test_calculate_metrics_pairs_every_feature(self, artifact):
        impacts = calculate_metrics(artifact)
        seen = {(impact.feature, impact.attack) for impact in impacts}
        assert seen == {
            (feature, attack)
            for feature in ("enhanced-trim", "local-detector", "remote-offload")
            for attack in ("classic", "trimming-attack")
        }
        assert all(impact.pairs == 1 for impact in impacts)

    def test_enhanced_trim_buys_recovery_under_trimming(self, artifact):
        by_key = {
            (impact.feature, impact.attack): impact
            for impact in calculate_metrics(artifact)
        }
        trim = by_key[("enhanced-trim", "trimming-attack")]
        assert trim.recovery_fraction_delta > 0.5

    def test_compare_configs(self, artifact):
        deltas = compare_configs(artifact, "full", "no-remote-offload")
        assert set(deltas) == {"classic", "trimming-attack"}
        assert deltas["classic"]["pages_offloaded_remote"] > 0
        with pytest.raises(KeyError):
            compare_configs(artifact, "full", "no-such-config")

    def test_reports_render(self, artifact):
        impacts = calculate_metrics(artifact)
        csv = render_impact_csv(impacts)
        assert csv.splitlines()[0].startswith("feature,attack,pairs")
        markdown = render_impact_markdown(impacts)
        assert markdown.startswith("| feature | attack |")


# ---------------------------------------------------------------------------
# CLI: ablate subcommand and the empty-filter bugfix
# ---------------------------------------------------------------------------


class TestCli:
    def test_ablate_subcommand_runs_and_checks_baseline(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "ablation.json"
        csv = tmp_path / "ablation.csv"
        main(
            [
                "ablate",
                "--output", str(out),
                "--csv", str(csv),
                "--baseline", str(GOLDEN_TINY),
            ]
        )
        stdout = capsys.readouterr().out
        assert "baseline match" in stdout
        assert AblationArtifact.load(str(out)).to_json() == GOLDEN_TINY.read_text(
            encoding="utf-8"
        )
        assert csv.read_text(encoding="utf-8").startswith("feature,attack")

    def test_ablate_rejects_unknown_features(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["ablate", "--features", "warp-drive"])

    @pytest.mark.parametrize("command", ["campaign", "roc"])
    def test_empty_filter_exits_nonzero_and_names_patterns(
        self, command, capsys, tmp_path
    ):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    command,
                    "--grid", "tiny",
                    "--filter", "no-such-defense/*",
                    "--output", str(tmp_path / "out.json"),
                ]
            )
        message = str(excinfo.value)
        assert "matched no cells" in message
        assert "no-such-defense/*" in message

    def test_matching_filter_still_runs(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "out.json"
        main(
            [
                "campaign",
                "--grid", "tiny",
                "--filter", "LocalSSD/classic/*",
                "--output", str(out),
            ]
        )
        capsys.readouterr()
        from repro.campaign import CampaignArtifact

        artifact = CampaignArtifact.load(str(out))
        assert artifact.cell_keys == ["LocalSSD/classic/office-edit/tiny"]


# ---------------------------------------------------------------------------
# Legacy entry-point shims
# ---------------------------------------------------------------------------


class TestLegacyShims:
    def test_legacy_entry_points_warn_once_and_delegate(self):
        import warnings

        from repro.analysis import experiments as legacy
        from repro._deprecation import reset_warned

        reset_warned()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            rows = legacy.run_trim_ablation(victim_files=4)
        assert [row.mode for row in rows] == ["enhanced", "naive", "disabled"]
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.ablation.experiments" in str(deprecations[0].message)
