"""run_fuzz: backend bit-identity, caching, checkpoint/resume, artifact."""

from __future__ import annotations

import pytest

from repro.campaign import CheckpointJournal, CrashAfterNCells, InjectedCrash
from repro.campaign.cache import ResultCache
from repro.scenarios import (
    FUZZ_ARTIFACT_VERSION,
    CoverageLedger,
    FuzzArtifact,
    FuzzConfig,
    SpecFuzzer,
    region_of,
    run_fuzz,
    run_fuzz_cell,
)

BUDGET = 4
SEED = 7

#: Pure (cache-less, journal-less, unguided) runs keyed by seed -- the
#: same walk is asserted against many times, so execute it once.
_MEMO = {}


def tiny_fuzz(**overrides):
    params = dict(seed=SEED, budget=BUDGET, config=FuzzConfig.tiny())
    params.update(overrides)
    pure = set(overrides) <= {"seed", "backend", "jobs"}
    key = (params["seed"], params.get("backend", "sequential"), params.get("jobs", 0))
    if pure and key in _MEMO:
        return _MEMO[key]
    artifact = run_fuzz(**params)
    if pure:
        _MEMO[key] = artifact
    return artifact


class TestDeterminism:
    def test_backends_are_bit_identical(self):
        sequential = tiny_fuzz(backend="sequential").to_json()
        threaded = tiny_fuzz(backend="thread", jobs=4).to_json()
        process = tiny_fuzz(backend="process", jobs=2).to_json()
        assert sequential == threaded == process

    def test_spec_hashes_follow_the_fuzzer_walk(self):
        artifact = tiny_fuzz()
        expected = [
            s.spec_hash()
            for s in SpecFuzzer(SEED, FuzzConfig.tiny()).generate(BUDGET)
        ]
        assert artifact.spec_hashes == expected

    def test_ledger_matches_the_executed_cells(self):
        artifact = tiny_fuzz()
        ledger = artifact.ledger
        assert ledger.total_specs == len(artifact.cells)
        for cell in artifact.cells:
            assert cell.spec_hash in ledger.regions[cell.region]

    def test_cell_results_match_direct_execution(self):
        artifact = tiny_fuzz()
        spec = SpecFuzzer(SEED, FuzzConfig.tiny()).spec_at(0)
        direct = run_fuzz_cell(spec)
        assert artifact.cell(spec.spec_hash()).to_dict() == direct.to_dict()

    def test_capacity_exhaustion_is_a_recorded_outcome(self):
        """A draw that runs the tiny device out of flash mid-workload
        must score as a terminal cell, not abort the whole walk."""
        from repro.api import ScenarioSpec

        spec = ScenarioSpec(
            defense="FlashGuard",
            attack="classic",
            workload="trace-hm",
            device="tiny",
            victim_files=4,
            user_activity_hours=8.0,
            seed=1,
        )
        cell = run_fuzz_cell(spec)
        assert cell.status == "capacity-exhausted"
        assert cell.oplog_hash is None
        assert not cell.defended
        # And the outcome itself is deterministic.
        assert run_fuzz_cell(spec).to_dict() == cell.to_dict()


class TestCache:
    def test_warm_cache_reproduces_the_cold_artifact(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cold = tiny_fuzz(cache=cache)
        assert cold.cache_stats is not None
        assert cold.cache_stats.misses == len(cold.cells)
        warm = tiny_fuzz(cache=ResultCache(str(tmp_path / "cache")))
        assert warm.cache_stats.hits == len(cold.cells)
        assert warm.to_json() == cold.to_json()


class TestResume:
    def test_crash_then_resume_completes_the_walk(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with pytest.raises(InjectedCrash):
            tiny_fuzz(
                journal=CheckpointJournal(path),
                after_cell=CrashAfterNCells(2),
            )
        resumed = tiny_fuzz(journal=CheckpointJournal(path), resume=True)
        assert resumed.cells_resumed >= 2
        assert resumed.to_json() == tiny_fuzz().to_json()

    def test_resume_refuses_a_different_fuzz_identity(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        tiny_fuzz(journal=CheckpointJournal(path))
        with pytest.raises(Exception, match="journal"):
            tiny_fuzz(
                seed=SEED + 1,
                journal=CheckpointJournal(path),
                resume=True,
            )


class TestGuidedRuns:
    def test_session_ledger_excludes_prior_coverage(self):
        """The caller owns the merge; run_fuzz reports only its own cells."""
        prior = CoverageLedger()
        for spec in SpecFuzzer(99, FuzzConfig.tiny()).generate(4):
            prior.record(spec)
        before = prior.to_json()
        artifact = tiny_fuzz(ledger=prior, toward_uncovered=True)
        assert prior.to_json() == before
        assert artifact.ledger.total_specs == len(artifact.cells)

    def test_guided_run_is_deterministic(self):
        prior = CoverageLedger()
        for spec in SpecFuzzer(99, FuzzConfig.tiny()).generate(4):
            prior.record(spec)
        a = tiny_fuzz(ledger=prior, toward_uncovered=True)
        b = tiny_fuzz(ledger=prior, toward_uncovered=True)
        assert a.to_json() == b.to_json()


class TestArtifact:
    def test_round_trip_is_bit_identical(self, tmp_path):
        artifact = tiny_fuzz()
        path = tmp_path / "fuzz.json"
        artifact.save(str(path))
        rebuilt = FuzzArtifact.load(str(path))
        assert rebuilt.to_json() == artifact.to_json()
        assert rebuilt.diff(artifact) == []

    def test_newer_version_is_refused(self):
        payload = tiny_fuzz().to_dict()
        payload["version"] = FUZZ_ARTIFACT_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            FuzzArtifact.from_dict(payload)

    def test_diff_localizes_changes(self):
        a = tiny_fuzz()
        b = tiny_fuzz(seed=SEED + 1)
        assert a.diff(a) == []
        assert b.diff(a) != []

    def test_cells_are_sorted_and_regions_consistent(self):
        artifact = tiny_fuzz()
        hashes = [c.spec_hash for c in artifact.cells]
        assert hashes == sorted(hashes)
        for cell in artifact.cells:
            spec = SpecFuzzer(SEED, FuzzConfig.tiny()).spec_at(
                artifact.spec_hashes.index(cell.spec_hash)
            )
            assert cell.region == region_of(spec)
