"""Tests for the ransomware attack models."""

import pytest

from repro.api import provision_environment
from repro.attacks.classic import ClassicRansomware, DestructionMode
from repro.attacks.gc_attack import GCAttack
from repro.attacks.samples import ATTACK_PROFILES, family_names, make_attack
from repro.attacks.timing_attack import TimingAttack
from repro.attacks.trimming_attack import TrimmingAttack
from repro.core.config import RSSDConfig
from repro.core.rssd import RSSD
from repro.crypto.entropy import EntropyClassifier
from repro.sim import US_PER_DAY
from repro.ssd.device import SSD
from repro.ssd.geometry import SSDGeometry


def plain_environment(victim_files=12):
    device = SSD(geometry=SSDGeometry.tiny())
    return provision_environment(device, victim_files=victim_files, file_size_bytes=8192)


def rssd_environment(victim_files=12):
    rssd = RSSD(config=RSSDConfig.tiny())
    return provision_environment(rssd, victim_files=victim_files, file_size_bytes=8192)


class TestEnvironment:
    def test_environment_populates_victim_files(self):
        env = plain_environment(victim_files=10)
        assert env.fs.file_count == 10
        assert env.attacker_process.is_malicious
        assert not env.user_process.is_malicious
        assert env.attacker_stream != env.user_stream


class TestClassicRansomware:
    def test_encrypts_every_file_in_place(self):
        env = plain_environment()
        outcome = ClassicRansomware(destruction=DestructionMode.OVERWRITE).execute(env)
        assert outcome.pages_encrypted >= len(outcome.victim_files)
        classifier = EntropyClassifier()
        for name in outcome.victim_files:
            encrypted = env.fs.read_file(name)
            assert encrypted != outcome.original_contents[name]
        assert outcome.ransom_note_files

    def test_captures_ground_truth_before_encrypting(self):
        env = plain_environment()
        outcome = ClassicRansomware().execute(env)
        assert len(outcome.victim_lbas) >= len(outcome.victim_files)
        assert set(outcome.original_fingerprints) <= set(outcome.victim_lbas)
        assert outcome.original_extents.keys() == outcome.original_contents.keys()

    def test_delete_mode_creates_locked_files(self):
        env = plain_environment()
        outcome = ClassicRansomware(destruction=DestructionMode.DELETE).execute(env)
        for name in outcome.victim_files:
            assert not env.fs.exists(name)
            assert env.fs.exists(name + ".locked")

    def test_trim_mode_counts_trimmed_pages(self):
        env = plain_environment()
        outcome = ClassicRansomware(destruction=DestructionMode.TRIM).execute(env)
        assert outcome.pages_trimmed > 0

    def test_attacker_stream_used_for_destructive_writes(self):
        env = plain_environment()
        ClassicRansomware().execute(env)
        # The device observers would have seen attacker-tagged writes; the
        # block device wrapper must be back on the user stream afterwards.
        assert env.blockdev.stream_id == env.user_stream

    def test_classic_is_not_privileged(self):
        assert ClassicRansomware.aggressive is False

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ClassicRansomware(inter_file_delay_us=-1)


class TestGCAttack:
    def test_fills_capacity_with_junk(self):
        env = plain_environment()
        outcome = GCAttack(fill_fraction=0.95).execute(env)
        assert outcome.junk_pages_written > 0
        assert outcome.attack_name == "gc-attack"

    def test_forces_stale_data_release_on_commodity_ssd(self):
        env = plain_environment()
        device = env.device
        outcome = GCAttack().execute(env)
        # On an unprotected SSD the flood forces GC to destroy the stale
        # (pre-encryption) versions of the victim pages.
        stale_lbas = {record.lpn for record in device.ftl.iter_stale()}
        surviving_victims = stale_lbas & set(outcome.victim_lbas)
        assert len(surviving_victims) < len(outcome.victim_lbas)

    def test_cannot_evict_rssd_retained_data(self):
        env = rssd_environment()
        rssd = env.device
        outcome = GCAttack().execute(env)
        assert rssd.data_loss_pages == 0
        # Every victim page still has a pre-attack version available.
        for lba in outcome.victim_lbas:
            version = rssd.retention.latest_version_before(lba, outcome.start_us)
            live = rssd.ssd.ftl.lookup(lba)
            assert version is not None or (live is not None and live.written_us <= outcome.start_us)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GCAttack(fill_fraction=0.0)
        with pytest.raises(ValueError):
            GCAttack(junk_file_pages=0)


class TestTimingAttack:
    def test_spreads_encryption_over_days(self):
        env = plain_environment(victim_files=8)
        outcome = TimingAttack(files_per_batch=1, camouflage_writes_per_batch=4).execute(env)
        assert outcome.duration_us > 3 * US_PER_DAY
        for name in outcome.victim_files:
            assert env.fs.read_file(name) != outcome.original_contents[name]

    def test_does_not_disable_host_defenses(self):
        assert TimingAttack.aggressive is False

    def test_camouflage_traffic_uses_user_stream(self):
        env = rssd_environment(victim_files=4)
        TimingAttack(files_per_batch=1, camouflage_writes_per_batch=6).execute(env)
        user_entries = env.device.oplog.entries_for_stream(env.user_stream)
        attacker_entries = env.device.oplog.entries_for_stream(env.attacker_stream)
        assert len(user_entries) > 0
        assert len(attacker_entries) > 0
        # Camouflage makes the user stream the dominant write source.
        assert len(user_entries) > len(attacker_entries)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TimingAttack(files_per_batch=0)
        with pytest.raises(ValueError):
            TimingAttack(batch_interval_us=0)


class TestTrimmingAttack:
    def test_trims_original_extents(self):
        env = plain_environment()
        outcome = TrimmingAttack().execute(env)
        assert outcome.pages_trimmed >= len(outcome.victim_files)
        for name in outcome.victim_files:
            assert not env.fs.exists(name)
            assert env.fs.exists(name + ".locked")

    def test_physically_destroys_data_on_commodity_ssd(self):
        env = plain_environment()
        device = env.device
        outcome = TrimmingAttack().execute(env)
        # After eager trim GC, the plaintext pages are unreadable.
        destroyed = 0
        for lba in outcome.victim_lbas:
            content = device.read_content(lba)
            original = outcome.original_fingerprints.get(lba)
            if content is None or content.fingerprint != original:
                destroyed += 1
        assert destroyed == len(outcome.victim_lbas)

    def test_rssd_retains_trimmed_data(self):
        env = rssd_environment()
        rssd = env.device
        outcome = TrimmingAttack().execute(env)
        report = rssd.recovery_engine().undo_attack(outcome.start_us, outcome.malicious_streams)
        assert report.recovered_everything
        for lba in outcome.victim_lbas:
            live = rssd.read_content(lba)
            assert live is not None
            assert live.fingerprint == outcome.original_fingerprints[lba]


class TestSampleProfiles:
    def test_every_family_builds_an_attack(self):
        for family in family_names():
            attack = make_attack(ATTACK_PROFILES[family])
            assert attack.name

    def test_unknown_class_rejected(self):
        from repro.attacks.samples import AttackProfile

        with pytest.raises(ValueError):
            make_attack(AttackProfile(family="x", attack_class="mystery"))

    def test_profiles_cover_all_attack_classes(self):
        classes = {profile.attack_class for profile in ATTACK_PROFILES.values()}
        assert classes == {"classic", "gc", "timing", "trimming"}

    def test_wannacry_like_profile_runs_end_to_end(self):
        env = plain_environment(victim_files=6)
        attack = make_attack(ATTACK_PROFILES["wannacry-like"])
        outcome = attack.execute(env)
        assert outcome.pages_encrypted > 0
