"""Tests for the stream cipher."""

import pytest

from repro.crypto.cipher import StreamCipher, keystream_bytes
from repro.ssd.flash import shannon_entropy


class TestKeystream:
    def test_length_matches_request(self):
        assert len(keystream_bytes(b"key", 0, 100)) == 100
        assert keystream_bytes(b"key", 0, 0) == b""

    def test_deterministic_for_same_inputs(self):
        assert keystream_bytes(b"key", 5, 64) == keystream_bytes(b"key", 5, 64)

    def test_differs_across_nonces_and_keys(self):
        assert keystream_bytes(b"key", 1, 64) != keystream_bytes(b"key", 2, 64)
        assert keystream_bytes(b"key-a", 1, 64) != keystream_bytes(b"key-b", 1, 64)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            keystream_bytes(b"", 0, 10)
        with pytest.raises(ValueError):
            keystream_bytes(b"key", 0, -1)


class TestStreamCipher:
    def test_roundtrip(self):
        cipher = StreamCipher(b"secret key material")
        plaintext = b"the quarterly report, now encrypted for ransom" * 10
        ciphertext = cipher.encrypt(plaintext, nonce=3)
        assert ciphertext != plaintext
        assert cipher.decrypt(ciphertext, nonce=3) == plaintext

    def test_wrong_nonce_does_not_decrypt(self):
        cipher = StreamCipher(b"secret key material")
        ciphertext = cipher.encrypt(b"hello world hello world", nonce=1)
        assert cipher.decrypt(ciphertext, nonce=2) != b"hello world hello world"

    def test_ciphertext_has_high_entropy(self):
        cipher = StreamCipher.from_passphrase("ransomware-key")
        plaintext = (b"aaaabbbbcccc" * 400)[:4096]
        ciphertext = cipher.encrypt(plaintext, nonce=9)
        assert shannon_entropy(plaintext) < 3.0
        assert shannon_entropy(ciphertext) > 7.5

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            StreamCipher(b"")

    def test_negative_nonce_rejected(self):
        with pytest.raises(ValueError):
            StreamCipher(b"key").encrypt(b"data", nonce=-1)

    def test_encrypt_stream_roundtrip(self):
        cipher = StreamCipher(b"key")
        chunks = [b"first chunk", b"second chunk", b"third"]
        encrypted = list(cipher.encrypt_stream(iter(chunks), nonce=100))
        decrypted = list(cipher.encrypt_stream(iter(encrypted), nonce=100))
        assert decrypted == chunks

    def test_key_fingerprint_is_stable_and_safe(self):
        cipher = StreamCipher(b"key")
        assert cipher.key_fingerprint == StreamCipher(b"key").key_fingerprint
        assert len(cipher.key_fingerprint) == 16

    def test_from_passphrase_deterministic(self):
        first = StreamCipher.from_passphrase("pay up")
        second = StreamCipher.from_passphrase("pay up")
        assert first.encrypt(b"x" * 32, 1) == second.encrypt(b"x" * 32, 1)
