"""SpecFuzzer: determinism, (seed, index) addressing, guidance, config."""

from __future__ import annotations

import pytest

from repro.api import ScenarioSpec
from repro.scenarios import (
    CoverageLedger,
    FuzzConfig,
    SpecFuzzer,
    region_of,
)


class TestDeterminism:
    def test_same_seed_same_walk(self):
        a = SpecFuzzer(7, FuzzConfig.tiny()).generate(12)
        b = SpecFuzzer(7, FuzzConfig.tiny()).generate(12)
        assert [s.spec_hash() for s in a] == [s.spec_hash() for s in b]
        assert [s.to_json() for s in a] == [s.to_json() for s in b]

    def test_different_seeds_diverge(self):
        a = SpecFuzzer(7, FuzzConfig.tiny()).generate(8)
        b = SpecFuzzer(8, FuzzConfig.tiny()).generate(8)
        assert [s.spec_hash() for s in a] != [s.spec_hash() for s in b]

    def test_spec_at_is_budget_independent(self):
        """spec_at(i) is addressed by (fuzz_seed, index) alone, so any
        spec from any walk can be re-derived without replaying the walk."""
        fuzzer = SpecFuzzer(7, FuzzConfig.tiny())
        walk = fuzzer.generate(10)
        for index in (0, 3, 9):
            alone = SpecFuzzer(7, FuzzConfig.tiny()).spec_at(index)
            assert alone.spec_hash() == walk[index].spec_hash()

    def test_specs_are_valid_and_drawn_from_the_config_pools(self):
        config = FuzzConfig.tiny()
        for spec in SpecFuzzer(3, config).generate(16):
            assert isinstance(spec, ScenarioSpec)
            assert spec.defense in config.defenses
            assert spec.attack in config.attacks
            assert spec.workload in config.workloads
            assert spec.device in config.devices
            assert spec.victim_files in config.victim_files_choices
            if spec.ablation:
                assert spec.defense == "RSSD"


class TestRejection:
    def test_invalid_pool_entries_are_rejected_and_counted(self):
        """A pool containing bogus registry names still yields valid
        specs -- the fuzzer redraws and accounts for each rejection."""
        config = FuzzConfig.tiny()
        poisoned = FuzzConfig.from_dict(
            {
                **config.to_dict(),
                "attacks": list(config.attacks) + ["not-an-attack"],
            }
        )
        fuzzer = SpecFuzzer(5, poisoned)
        specs = fuzzer.generate(24)
        assert len(specs) == 24
        assert all(s.attack != "not-an-attack" for s in specs)
        assert fuzzer.stats.rejected > 0
        assert fuzzer.stats.generated == 24

    def test_unsatisfiable_pool_raises(self):
        config = FuzzConfig.from_dict(
            {**FuzzConfig.tiny().to_dict(), "attacks": ["not-an-attack"]}
        )
        with pytest.raises(RuntimeError, match="valid ScenarioSpec"):
            SpecFuzzer(1, config).spec_at(0)


class TestGuidance:
    def test_toward_uncovered_prefers_new_regions(self):
        config = FuzzConfig.tiny()
        baseline = SpecFuzzer(9, config).generate(20)
        covered = CoverageLedger()
        # Mark the baseline's first half covered; guided generation with
        # the same seed must reach at least as many distinct regions.
        for spec in baseline[:10]:
            covered.record(spec)
        guided = SpecFuzzer(9, config).generate(
            20, covered=set(covered.covered_regions), toward_uncovered=True
        )
        assert len(guided) == 20
        blind_regions = {region_of(s) for s in baseline}
        guided_regions = {region_of(s) for s in guided}
        assert len(guided_regions) >= len(blind_regions)

    def test_guided_walk_is_itself_deterministic(self):
        config = FuzzConfig.tiny()
        covered = {region_of(s) for s in SpecFuzzer(2, config).generate(6)}
        a = SpecFuzzer(4, config).generate(10, covered=set(covered), toward_uncovered=True)
        b = SpecFuzzer(4, config).generate(10, covered=set(covered), toward_uncovered=True)
        assert [s.spec_hash() for s in a] == [s.spec_hash() for s in b]

    def test_covered_set_is_ignored_without_the_flag(self):
        config = FuzzConfig.tiny()
        covered = {region_of(s) for s in SpecFuzzer(2, config).generate(6)}
        plain = SpecFuzzer(4, config).generate(10)
        with_covered = SpecFuzzer(4, config).generate(10, covered=set(covered))
        assert [s.spec_hash() for s in plain] == [s.spec_hash() for s in with_covered]


class TestConfig:
    def test_round_trip_is_exact(self):
        for config in (FuzzConfig(), FuzzConfig.tiny()):
            rebuilt = FuzzConfig.from_dict(config.to_dict())
            assert rebuilt == config

    def test_unknown_fields_are_refused(self):
        payload = FuzzConfig.tiny().to_dict()
        payload["gpu_count"] = 8
        with pytest.raises(ValueError, match="unknown"):
            FuzzConfig.from_dict(payload)

    def test_default_pools_cover_the_registries(self):
        from repro.campaign import registries

        config = FuzzConfig()
        assert config.defenses == tuple(sorted(registries.DEFENSES))
        assert config.attacks == tuple(sorted(registries.ATTACKS))
        assert config.workloads == tuple(sorted(registries.WORKLOADS))
        assert config.devices == tuple(sorted(registries.DEVICE_CONFIGS))

    def test_tiny_universe_is_stable(self):
        universe = FuzzConfig.tiny().universe()
        assert len(universe) == 48
        assert universe == sorted(universe)
        # RSSD is the only defense with ablated bins.
        assert all("|ablated|" not in r or r.startswith("RSSD|") for r in universe)
