"""Tests for the command-line interface and ASCII figure rendering."""

import pytest

from repro.analysis.figures import render_bars, render_figure2
from repro.analysis.retention import FigureTwoRow, figure2_rows
from repro.cli import build_parser, main


class TestRenderBars:
    def test_basic_rendering(self):
        output = render_bars(["a", "bb"], [1.0, 2.0], width=10, unit=" d")
        lines = output.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        assert lines[1].count("#") > lines[0].count("#")
        assert " d" in lines[0]

    def test_scaling_against_max_value(self):
        output = render_bars(["x"], [5.0], max_value=10.0, width=10)
        assert output.count("#") == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0], width=2)
        assert render_bars([], []) == ""

    def test_figure2_rendering_contains_every_volume(self):
        rows = figure2_rows(volumes=["hm", "src"])
        output = render_figure2(rows)
        assert "hm" in output and "src" in output
        assert "RSSD" in output and "LocalSSD" in output
        assert render_figure2([]) == ""


class TestCLI:
    def test_parser_knows_every_experiment(self):
        parser = build_parser()
        for command in (
            "table1",
            "figure2",
            "overhead",
            "lifetime",
            "recovery",
            "forensics",
            "ablation-offload",
            "ablation-trim",
            "ablation-detection",
        ):
            args = parser.parse_args([command])
            assert callable(args.func)

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure2_command_prints_table(self, capsys):
        assert main(["figure2", "--volumes", "hm", "src"]) == 0
        output = capsys.readouterr().out
        assert "hm" in output and "src" in output
        assert "RSSD" in output

    def test_figure2_bars_mode(self, capsys):
        assert main(["figure2", "--volumes", "hm", "--bars"]) == 0
        assert "#" in capsys.readouterr().out

    def test_table1_subset_command(self, capsys):
        assert main(["table1", "--defenses", "LocalSSD", "RSSD"]) == 0
        output = capsys.readouterr().out
        assert "RSSD" in output and "LocalSSD" in output
        assert "Forensics" in output

    def test_ablation_trim_command(self, capsys):
        assert main(["ablation-trim"]) == 0
        output = capsys.readouterr().out
        assert "enhanced" in output and "naive" in output
