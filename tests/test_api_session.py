"""Session lifecycle, typed event bus, and facade/engine equivalence."""

from __future__ import annotations

import random

import pytest

from repro.api import (
    DetectionEvent,
    EventBus,
    GCEvent,
    HostOpEvent,
    OffloadEvent,
    RetentionEvictEvent,
    ScenarioSpec,
    Session,
    record_events,
)
from repro.campaign.engine import run_cell
from repro.campaign.grid import CampaignGrid
from repro.defenses.base import SelectiveRetentionPolicy
from repro.sim import SimClock
from repro.ssd.device import SSD
from repro.ssd.ftl import InvalidationCause, StalePage
from repro.ssd.geometry import SSDGeometry


def tiny_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        defense="RSSD",
        attack="trimming-attack",
        victim_files=6,
        user_activity_hours=2.0,
        seed=7,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestEventBus:
    def test_subscribe_publish_unsubscribe(self):
        bus = EventBus()
        seen = []
        subscription = bus.subscribe(DetectionEvent, seen.append)
        event = DetectionEvent(detector="x", detected=True, timestamp_us=1)
        bus.publish(event)
        bus.unsubscribe(subscription)
        bus.publish(event)
        assert seen == [event]
        assert bus.published_counts["DetectionEvent"] == 2

    def test_events_are_delivered_by_exact_type(self):
        bus = EventBus()
        detections, gcs = [], []
        bus.subscribe(DetectionEvent, detections.append)
        bus.subscribe(GCEvent, gcs.append)
        bus.publish(DetectionEvent(detector="x", detected=False, timestamp_us=None))
        assert len(detections) == 1 and gcs == []

    def test_non_callable_handler_is_rejected(self):
        with pytest.raises(TypeError):
            EventBus().subscribe(DetectionEvent, "not-callable")

    def test_record_events_defaults_to_all_types(self):
        bus = EventBus()
        events, subscriptions = record_events(bus)
        assert len(subscriptions) == 5
        bus.publish(DetectionEvent(detector="x", detected=True, timestamp_us=None))
        assert len(events) == 1


class TestDeviceTaps:
    def test_gc_listener_fires_on_collection(self):
        device = SSD(geometry=SSDGeometry.tiny(), clock=SimClock())
        passes = []
        device.gc_listeners.append(
            lambda result, timestamp_us, forced: passes.append((result, forced))
        )
        device.write(lba=0, data=b"x" * device.page_size)
        device.run_gc_now(force=True)
        assert passes and passes[-1][1] is True

    def test_retention_evict_listener_fires_on_capacity_pressure(self):
        clock = SimClock()
        policy = SelectiveRetentionPolicy(
            clock=clock, should_retain=lambda record: True, capacity_pages=1
        )
        evicted = []
        policy.evict_listeners.append(
            lambda record, cause, timestamp_us: evicted.append((record.lpn, cause))
        )

        def stale(lpn):
            from repro.ssd.flash import PageContent

            return StalePage(
                lpn=lpn,
                ppn=lpn,
                content=PageContent.synthetic(
                    fingerprint=lpn, length=4096, entropy=1.0, compress_ratio=0.5
                ),
                written_us=0,
                invalidated_us=0,
                cause=InvalidationCause.OVERWRITE,
                version=1,
            )

        policy.on_invalidate(stale(1))
        policy.on_invalidate(stale(2))
        assert evicted == [(1, "capacity")]

    def test_gc_pressure_evictions_are_published(self):
        clock = SimClock()
        policy = SelectiveRetentionPolicy(
            clock=clock,
            should_retain=lambda record: True,
            capacity_pages=10,
            pin_under_pressure=False,
        )
        causes = []
        policy.evict_listeners.append(
            lambda record, cause, timestamp_us: causes.append(cause)
        )
        from repro.ssd.flash import PageContent

        policy.on_invalidate(
            StalePage(
                lpn=1,
                ppn=1,
                content=PageContent.synthetic(
                    fingerprint=1, length=4096, entropy=1.0, compress_ratio=0.5
                ),
                written_us=0,
                invalidated_us=0,
                cause=InvalidationCause.OVERWRITE,
                version=1,
            )
        )
        released = policy.reclaim_pressure(ftl=None, needed_pages=1)
        assert released == 1 and causes == ["gc-pressure"]


class TestSessionLifecycle:
    def test_provision_then_run_then_result(self):
        session = Session(tiny_spec())
        assert not session.provisioned and not session.executed
        with pytest.raises(RuntimeError, match="not run yet"):
            _ = session.result
        session.provision()
        assert session.provisioned and session.defense is not None
        result = session.run()
        assert session.executed and session.result is result
        assert result.recovery_fraction == 1.0 and result.defended

    def test_run_provisions_on_demand_and_refuses_to_rerun(self):
        session = Session(tiny_spec())
        session.run()
        with pytest.raises(RuntimeError, match="already ran"):
            session.run()
        with pytest.raises(RuntimeError, match="already provisioned"):
            session.provision()

    def test_explicit_overrides_require_all_pieces(self):
        with pytest.raises(ValueError, match="missing"):
            Session()  # neither spec nor overrides

    def test_views_require_the_right_phase(self):
        session = Session(tiny_spec())
        with pytest.raises(RuntimeError, match="not provisioned"):
            session.metrics()
        with pytest.raises(RuntimeError, match="not provisioned"):
            session.forensics()
        session.run()
        assert session.metrics().host_commands > 0
        assert session.forensics() is not None

    def test_views_reflect_the_executed_scenario(self):
        session = Session(tiny_spec())
        result = session.run()
        metrics = session.metrics()
        assert metrics.host_commands == result.host_commands
        assert metrics.write_amplification == result.write_amplification
        detection = session.detection()
        assert detection.detected is result.detected
        assert detection.events  # RSSD publishes local + remote reports
        assert {event.detector for event in detection.events} == {
            "local-window",
            "remote-offloaded",
        }

    def test_spec_overrides_are_recorded_in_the_result_provenance(self):
        """to_cell_result reports the seeds/sizes that actually ran."""
        session = Session(tiny_spec(defense="LocalSSD"), env_seed=999, victim_files=4)
        cell = session.run().to_cell_result()
        assert cell.env_seed == 999
        assert session.result.spec.victim_files == 4

    def test_factory_overrides_break_spec_provenance(self):
        from repro.campaign import registries

        session = Session(
            tiny_spec(defense="LocalSSD"),
            attack_factory=lambda: registries.ATTACKS["classic"](3),
        )
        result = session.run()
        assert result.spec is None
        with pytest.raises(ValueError, match="factory overrides"):
            result.to_cell_result()

    def test_detection_time_and_latency_agree(self):
        """The view's time and latency derive from the same detector."""
        session = Session(tiny_spec())
        result = session.run()
        view = session.detection()
        if view.detection_time_us is not None:
            start = result.attack_outcome.start_us
            assert view.detection_time_us - start == view.detection_latency_us

    def test_forensics_view_is_none_without_evidence_chain(self):
        session = Session(tiny_spec(defense="LocalSSD"))
        session.run()
        assert session.forensics() is None


class TestSessionEvents:
    def test_host_ops_flow_through_the_bus(self):
        session = Session(tiny_spec())
        events, _ = record_events(session.bus, HostOpEvent)
        result = session.run()
        assert len(events) == result.host_commands
        timestamps = [event.timestamp_us for event in events]
        assert timestamps == sorted(timestamps)

    def test_offload_and_detection_events_for_rssd(self):
        session = Session(tiny_spec())
        events, _ = record_events(session.bus, OffloadEvent, DetectionEvent)
        session.run()
        offloads = [e for e in events if isinstance(e, OffloadEvent)]
        assert offloads and all(e.kind in ("pages", "log-segment") for e in offloads)
        assert all(e.wire_bytes > 0 for e in offloads)
        detections = [e for e in events if isinstance(e, DetectionEvent)]
        assert any(e.detected for e in detections)

    def test_subscriber_less_sessions_still_count_host_ops(self):
        """The hot-path fast path skips allocation, not accounting."""
        session = Session(tiny_spec(defense="LocalSSD"))
        result = session.run()
        assert session.bus.published_counts["HostOpEvent"] == result.host_commands
        assert session.bus.subscriber_count(HostOpEvent) == 0

    def test_bus_subscribers_do_not_change_results(self):
        """A listening session is bit-identical to a deaf one."""
        quiet = Session(tiny_spec()).run()
        noisy_session = Session(tiny_spec())
        record_events(noisy_session.bus)
        noisy = noisy_session.run()
        assert noisy.to_cell_result().to_dict() == quiet.to_cell_result().to_dict()


class TestPublicSurface:
    def test_every_promised_name_resolves_and_is_documented(self):
        """``repro.api.__all__`` is the semver promise; keep it honest."""
        import inspect

        import repro.api as api

        for name in api.__all__:
            obj = getattr(api, name)  # raises if a promised name is missing
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert (obj.__doc__ or "").strip(), f"{name} lacks a docstring"

    def test_the_facade_exports_the_five_event_types(self):
        import repro.api as api

        for name in (
            "HostOpEvent",
            "GCEvent",
            "DetectionEvent",
            "OffloadEvent",
            "RetentionEvictEvent",
        ):
            assert name in api.__all__


class TestFacadeEngineEquivalence:
    def test_session_reproduces_campaign_cells_bit_for_bit(self):
        grid = CampaignGrid.tiny()
        for cell in grid.cells()[:2]:
            engine_result = run_cell(cell)
            session = Session(ScenarioSpec.from_cell(cell, campaign_seed=grid.seed))
            facade_result = session.run().to_cell_result()
            assert facade_result.to_dict() == engine_result.to_dict()

    def test_to_cell_result_requires_a_spec(self):
        from repro.campaign import registries

        session = Session(
            defense_factory=registries.DEFENSES["LocalSSD"],
            attack_factory=lambda: registries.ATTACKS["classic"](3),
            workload=registries.WORKLOADS["office-edit"],
            geometry=SSDGeometry.tiny(),
            victim_files=4,
            file_size_bytes=8192,
            user_activity_hours=1.0,
            recent_edit_fraction=0.3,
            env_seed=5,
            workload_rng=random.Random(6),
        )
        result = session.run()
        with pytest.raises(ValueError, match="ScenarioSpec"):
            result.to_cell_result()
