"""BatchTraceReplayer edge cases, checked against the per-op replayer.

The batched replayer's contract is logical equivalence: after replaying
the same trace, every live page holds the same content version as under
per-op replay and the host-side counters match.  These tests pin the
boundary conditions of the coalescing scan: empty input, single
records, a run break at every record, and runs crossing the batch-size
cap.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.sim import SimClock
from repro.ssd.device import SSD
from repro.ssd.geometry import SSDGeometry
from repro.workloads.records import TraceOp, TraceRecord
from repro.workloads.replay import BatchTraceReplayer, TraceReplayer


def fresh_device() -> SSD:
    return SSD(geometry=SSDGeometry.tiny(), clock=SimClock())


def replay_both(records: List[TraceRecord], max_batch_pages: int = 64):
    """Replay ``records`` per-op and batched on twin devices."""
    per_op_device, batch_device = fresh_device(), fresh_device()
    per_op = TraceReplayer(per_op_device, honor_timestamps=False)
    batched = BatchTraceReplayer(
        batch_device, honor_timestamps=False, max_batch_pages=max_batch_pages
    )
    return (
        per_op.replay(records),
        batched.replay(records),
        per_op_device,
        batch_device,
    )


def assert_logical_state_equal(left: SSD, right: SSD) -> None:
    for lba in range(left.capacity_pages):
        mine = left.read_content(lba)
        theirs = right.read_content(lba)
        if mine is None or theirs is None:
            assert mine is None and theirs is None, lba
        else:
            assert mine.fingerprint == theirs.fingerprint, lba


def write(lba: int, npages: int = 1, ts: int = 0, stream: int = 0) -> TraceRecord:
    return TraceRecord(
        timestamp_us=ts, op=TraceOp.WRITE, lba=lba, npages=npages, stream_id=stream
    )


def read(lba: int, npages: int = 1, ts: int = 0) -> TraceRecord:
    return TraceRecord(timestamp_us=ts, op=TraceOp.READ, lba=lba, npages=npages)


def trim(lba: int, npages: int = 1, ts: int = 0) -> TraceRecord:
    return TraceRecord(timestamp_us=ts, op=TraceOp.TRIM, lba=lba, npages=npages)


def flush(ts: int = 0) -> TraceRecord:
    return TraceRecord(timestamp_us=ts, op=TraceOp.FLUSH, lba=0, npages=0)


class TestEmptyAndSingle:
    def test_empty_trace(self):
        per_op, batched, left, right = replay_both([])
        assert batched.records_replayed == 0
        assert batched.device_calls == 0
        assert batched.coalescing_factor == 0.0
        assert per_op.records_replayed == 0
        assert_logical_state_equal(left, right)

    @pytest.mark.parametrize(
        "record",
        [write(3), write(3, npages=4), read(0), trim(2), flush()],
        ids=["write", "multi-page-write", "read", "trim", "flush"],
    )
    def test_single_record_run(self, record):
        if record.op in (TraceOp.READ, TraceOp.TRIM):
            setup = [write(0, npages=8)]
        else:
            setup = []
        per_op, batched, left, right = replay_both(setup + [record])
        assert batched.records_replayed == per_op.records_replayed
        assert batched.reads == per_op.reads
        assert batched.writes == per_op.writes
        assert batched.trims == per_op.trims
        assert batched.flushes == per_op.flushes
        assert batched.pages_written == per_op.pages_written
        assert batched.pages_read == per_op.pages_read
        assert batched.pages_trimmed == per_op.pages_trimmed
        assert_logical_state_equal(left, right)


class TestRunBreaks:
    def test_op_type_alternation_at_every_record(self):
        """write/read/write/trim/... breaks the run at every record."""
        records: List[TraceRecord] = []
        ops = [
            lambda i: write(i),
            lambda i: read(i),
            lambda i: write(i),
            lambda i: trim(i),
        ]
        # Prime the address range so reads/trims touch mapped pages.
        records.append(write(0, npages=16))
        for index in range(15):
            records.append(ops[index % len(ops)](index))
        per_op, batched, left, right = replay_both(records)
        # Every record breaks the previous run: zero coalescing.
        assert batched.device_calls == per_op.device_calls == len(records)
        assert batched.coalescing_factor == 1.0
        assert batched.pages_written == per_op.pages_written
        assert batched.pages_trimmed == per_op.pages_trimmed
        assert_logical_state_equal(left, right)

    def test_stream_change_breaks_a_contiguous_run(self):
        records = [write(0, stream=1), write(1, stream=1), write(2, stream=2)]
        _, batched, left, right = replay_both(records)
        assert batched.device_calls == 2
        assert batched.records_replayed == 3
        assert_logical_state_equal(left, right)

    def test_discontiguous_lbas_break_the_run(self):
        records = [write(0), write(1), write(5), write(6)]
        _, batched, left, right = replay_both(records)
        assert batched.device_calls == 2
        assert_logical_state_equal(left, right)


class TestBatchBoundary:
    def test_run_crossing_the_batch_size_cap(self):
        """A 10-record contiguous run with a 4-page cap splits 4/4/2."""
        records = [write(lba) for lba in range(10)]
        per_op, batched, left, right = replay_both(records, max_batch_pages=4)
        assert per_op.device_calls == 10
        assert batched.device_calls == 3
        assert batched.records_replayed == 10
        assert batched.pages_written == per_op.pages_written == 10
        assert_logical_state_equal(left, right)

    def test_multi_page_record_straddling_the_cap(self):
        """Merging stops *before* the cap would be exceeded mid-record."""
        records = [write(0, npages=3), write(3, npages=3), write(6, npages=3)]
        _, batched, left, right = replay_both(records, max_batch_pages=4)
        # 3+3 > 4, so every record is its own batch.
        assert batched.device_calls == 3
        assert_logical_state_equal(left, right)

    def test_single_record_larger_than_the_cap_is_not_split(self):
        """The cap bounds merging, not a single oversized host command."""
        records = [write(0, npages=8)]
        per_op, batched, left, right = replay_both(records, max_batch_pages=4)
        assert batched.device_calls == 1
        assert batched.pages_written == per_op.pages_written == 8
        assert_logical_state_equal(left, right)

    def test_reads_and_trims_also_respect_the_cap(self):
        setup = [write(0, npages=16)]
        reads = [read(lba) for lba in range(8)]
        trims = [trim(lba) for lba in range(8, 12)]
        _, batched, left, right = replay_both(setup + reads + trims, max_batch_pages=4)
        # 1 setup write + ceil(8/4) read batches + ceil(4/4) trim batches.
        assert batched.device_calls == 1 + 2 + 1
        assert_logical_state_equal(left, right)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            BatchTraceReplayer(fresh_device(), max_batch_pages=0)
