"""Tests for the analysis helpers: retention model, stats, reporting."""

import pytest

from repro.analysis.reporting import format_csv, format_markdown_table, format_table
from repro.analysis.retention import (
    RetentionScenario,
    figure2_rows,
    lookup_volume,
    retention_days_local,
    retention_days_local_compressed,
    retention_days_rssd,
)
from repro.analysis.retention import figure2_summary
from repro.analysis.stats import geometric_mean, mean, median, relative_overhead, stdev
from repro.workloads.fiu import figure2_volumes


class TestStats:
    def test_mean_median_empty(self):
        assert mean([]) == 0.0
        assert median([]) == 0.0

    def test_mean_and_median(self):
        assert mean([1, 2, 3, 4]) == pytest.approx(2.5)
        assert median([5, 1, 3]) == 3
        assert median([1, 2, 3, 4]) == pytest.approx(2.5)

    def test_stdev(self):
        assert stdev([4.0]) == 0.0
        assert stdev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(2.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_relative_overhead(self):
        assert relative_overhead(100.0, 101.0) == pytest.approx(0.01)
        assert relative_overhead(0.0, 5.0) == 0.0


class TestReporting:
    def test_text_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["longer-name", 2.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "longer-name" in lines[3]

    def test_markdown_table(self):
        table = format_markdown_table(["a", "b"], [[1, 2]])
        assert table.splitlines()[1] == "| --- | --- |"

    def test_csv_rejects_commas(self):
        assert format_csv(["a"], [["x"]]).splitlines() == ["a", "x"]
        with pytest.raises(ValueError):
            format_csv(["a"], [["x,y"]])


class TestRetentionModel:
    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            RetentionScenario(device_capacity_gb=0)
        with pytest.raises(ValueError):
            RetentionScenario(overprovision_ratio=1.5)
        with pytest.raises(ValueError):
            RetentionScenario(overwrite_fraction=0.0)

    def test_lookup_volume_spans_both_catalogues(self):
        assert lookup_volume("hm").name == "hm"
        assert lookup_volume("email").name == "email"
        with pytest.raises(KeyError):
            lookup_volume("missing-volume")

    def test_local_retention_inversely_proportional_to_write_rate(self):
        scenario = RetentionScenario(horizon_days=10_000)
        light = lookup_volume("wdev")   # ~1 GB/day
        heavy = lookup_volume("email")  # ~8 GB/day
        assert retention_days_local(light, scenario) > retention_days_local(heavy, scenario)

    def test_compression_extends_local_retention(self):
        scenario = RetentionScenario(horizon_days=10_000)
        for volume in ("hm", "src", "email"):
            profile = lookup_volume(volume)
            assert retention_days_local_compressed(profile, scenario) > retention_days_local(
                profile, scenario
            )

    def test_rssd_bounded_by_remote_budget_not_op(self):
        scenario = RetentionScenario(horizon_days=100_000, remote_budget_gb=2048)
        profile = lookup_volume("src")
        rssd_days = retention_days_rssd(profile, scenario)
        local_days = retention_days_local(profile, scenario)
        assert rssd_days > 10 * local_days

    def test_slow_link_degrades_rssd_retention(self):
        profile = lookup_volume("email")
        fast = RetentionScenario(horizon_days=10_000)
        # A link slower than the stale production rate cannot drain.
        slow = RetentionScenario(horizon_days=10_000, link_bandwidth_gbps=1e-6)
        assert retention_days_rssd(profile, slow) < retention_days_rssd(profile, fast)

    def test_figure2_shape_matches_paper(self):
        rows = figure2_rows()
        assert len(rows) == len(figure2_volumes())
        for row in rows:
            assert row.rssd_days >= row.local_compressed_days >= row.local_days
            assert row.rssd_days >= 200.0  # the headline claim
            assert row.local_days < 100.0
        summary = figure2_summary(rows)
        assert summary["volumes_with_rssd_over_200_days"] == len(rows)
        assert summary["mean_local_days"] < summary["mean_rssd_days"]

    def test_figure2_respects_horizon_cap(self):
        rows = figure2_rows(scenario=RetentionScenario(horizon_days=240.0))
        assert max(row.rssd_days for row in rows) <= 240.0


class TestStaleProductionValidation:
    def test_simulated_stale_rate_supports_model_assumption(self):
        from repro.analysis.experiments import measure_stale_production

        ratio = measure_stale_production("hm", duration_s=0.5)
        # Most writes to a skewed working set displace an older version, which
        # is what the analytic model's overwrite_fraction encodes.
        assert 0.5 < ratio <= 1.0
