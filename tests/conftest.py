"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "Regenerate the golden campaign artifacts under tests/golden/ "
            "instead of comparing against them (for intentional changes; "
            "review the diff before committing)."
        ),
    )


@pytest.fixture
def update_golden(request) -> bool:
    """Whether this run should rewrite golden artifacts."""
    return bool(request.config.getoption("--update-golden"))

from repro.core.config import RSSDConfig
from repro.core.rssd import RSSD
from repro.sim import SimClock
from repro.ssd.device import SSD
from repro.ssd.flash import PageContent
from repro.ssd.geometry import SSDGeometry


@pytest.fixture
def tiny_geometry() -> SSDGeometry:
    return SSDGeometry.tiny()


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def ssd(tiny_geometry, clock) -> SSD:
    """A plain (unprotected) SSD on the tiny geometry."""
    return SSD(geometry=tiny_geometry, clock=clock)


@pytest.fixture
def rssd() -> RSSD:
    """An RSSD instance on the tiny geometry."""
    return RSSD(config=RSSDConfig.tiny())


def make_content(tag: int, entropy: float = 3.0, length: int = 4096) -> PageContent:
    """Helper to build distinguishable synthetic page contents."""
    return PageContent.synthetic(
        fingerprint=tag, length=length, entropy=entropy, compress_ratio=0.5
    )


@pytest.fixture
def content_factory():
    return make_content
