"""Tests for the latency model."""

import pytest

from repro.ssd.latency import LatencyModel


class TestLatencyModel:
    def test_defaults_are_ordered_sensibly(self):
        latency = LatencyModel()
        assert latency.read_us < latency.program_us < latency.erase_us

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(read_us=-1.0)
        with pytest.raises(ValueError):
            LatencyModel(log_append_us=-0.1)

    def test_transfer_scales_with_size(self):
        latency = LatencyModel(bus_transfer_us_per_kb=2.0)
        assert latency.transfer_us(1024) == pytest.approx(2.0)
        assert latency.transfer_us(4096) == pytest.approx(8.0)
        with pytest.raises(ValueError):
            latency.transfer_us(-1)

    def test_page_operations_include_controller_and_transfer(self):
        latency = LatencyModel()
        read = latency.read_page_us(4096)
        assert read > latency.read_us
        program = latency.program_page_us(4096)
        assert program > latency.program_us
        assert latency.copyback_page_us(4096) == pytest.approx(read + program)

    def test_erase_block(self):
        latency = LatencyModel()
        assert latency.erase_block_us() == pytest.approx(
            latency.controller_us + latency.erase_us
        )

    def test_presets(self):
        assert LatencyModel.fast_nvme().program_us > 0
        assert LatencyModel.cosmos_openssd().read_us > LatencyModel().read_us
