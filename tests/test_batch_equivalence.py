"""Property tests: the batched I/O path is equivalent to the per-op path.

Two levels of guarantee are pinned down here:

1. *Strict* -- one ``write_batch`` / ``read_batch`` / ``trim_range``
   call is bit-identical to the corresponding per-op call: same FTL
   mapping, stale pool, metrics, clock, operation-log entries and even
   the evidence-chain hash head.
2. *Logical* -- coalescing replay (merging contiguous records into
   fewer, larger commands) preserves the logical device state: every
   live page holds the same content version, and page-level counters
   match, even though the command stream itself is merged.
"""

import random

import pytest

from repro.core.config import RSSDConfig
from repro.core.rssd import RSSD
from repro.ssd.device import SSDBuilder
from repro.ssd.flash import PageContent
from repro.ssd.geometry import SSDGeometry
from repro.workloads.records import TraceOp, TraceRecord
from repro.workloads.replay import BatchTraceReplayer, TraceReplayer


def random_ops(seed, count, capacity, write_fraction=0.55, trim_fraction=0.15):
    """A randomized mixed trace of (kind, lba, npages, contents) tuples."""
    rng = random.Random(seed)
    ops = []
    sequence = 0
    for _ in range(count):
        npages = rng.choice([1, 1, 1, 2, 3, 4])
        lba = rng.randrange(capacity - npages)
        roll = rng.random()
        if roll < write_fraction:
            contents = []
            for _ in range(npages):
                sequence += 1
                contents.append(
                    PageContent.synthetic(
                        fingerprint=sequence,
                        length=4096,
                        entropy=rng.uniform(0.5, 7.9),
                        compress_ratio=rng.uniform(0.1, 1.0),
                    )
                )
            ops.append(("write", lba, npages, contents))
        elif roll < write_fraction + trim_fraction:
            ops.append(("trim", lba, npages, None))
        else:
            ops.append(("read", lba, npages, None))
    return ops


def drive(device, ops, batched):
    for kind, lba, npages, contents in ops:
        if kind == "write":
            (device.write_batch if batched else device.write)(lba, contents)
        elif kind == "trim":
            (device.trim_range if batched else device.trim)(lba, npages)
        else:
            (device.read_batch if batched else device.read)(lba, npages)


def mapping_snapshot(ssd):
    return {
        lpn: (meta.ppn, meta.version, meta.written_us)
        for lpn, meta in ssd.ftl._mapping.items()
    }


def stale_snapshot(ssd):
    return sorted(
        (r.lpn, r.ppn, r.version, r.cause.value, r.offloaded, r.released)
        for r in ssd.ftl.iter_stale()
    )


class TestStrictEquivalenceOnRSSD:
    """Per-call equivalence on the full RSSD stack (log, retention, offload)."""

    @pytest.mark.parametrize("seed", [3, 17, 92])
    def test_randomized_trace_is_bit_identical(self, seed):
        ops = random_ops(seed, 1500, RSSDConfig.tiny().geometry.exported_pages)
        per_op = RSSD(RSSDConfig.tiny())
        batched = RSSD(RSSDConfig.tiny())
        drive(per_op, ops, batched=False)
        drive(batched, ops, batched=True)

        assert mapping_snapshot(per_op.ssd) == mapping_snapshot(batched.ssd)
        assert stale_snapshot(per_op.ssd) == stale_snapshot(batched.ssd)
        assert per_op.metrics.summary() == batched.metrics.summary()
        assert per_op.clock.now_us == batched.clock.now_us
        # Operation log: same entry count and the same hash-chain head,
        # i.e. byte-identical evidence chains.
        assert per_op.oplog.total_entries == batched.oplog.total_entries
        assert per_op.oplog.chain.head == batched.oplog.chain.head
        # Retention/offload pipeline agrees too.
        assert per_op.summary() == batched.summary()

    def test_read_batch_returns_same_bytes(self):
        per_op = RSSD(RSSDConfig.tiny())
        batched = RSSD(RSSDConfig.tiny())
        for device in (per_op, batched):
            device.write(0, b"batched reads must see the same data" * 20)
        assert per_op.read(0, 4) == batched.read_batch(0, 4)

    def test_trim_range_matches_trim(self):
        per_op = RSSD(RSSDConfig.tiny())
        batched = RSSD(RSSDConfig.tiny())
        for device in (per_op, batched):
            for lba in range(8):
                device.write(lba, b"x" * 64)
        records_a = per_op.trim(2, 4)
        records_b = batched.trim_range(2, 4)
        assert [r.lpn for r in records_a] == [r.lpn for r in records_b]
        assert per_op.trim_handler.stats == batched.trim_handler.stats
        assert per_op.clock.now_us == batched.clock.now_us


class TestStrictEquivalenceOnPlainSSD:
    """Same property on a bare SSD (greedy GC, passthrough retention)."""

    @pytest.mark.parametrize("seed", [7, 41])
    def test_randomized_trace_is_bit_identical(self, seed):
        geometry = SSDGeometry.tiny()
        ops = random_ops(seed, 2000, geometry.exported_pages, trim_fraction=0.2)
        per_op = SSDBuilder().with_geometry(geometry).build()
        batched = SSDBuilder().with_geometry(geometry).build()
        drive(per_op, ops, batched=False)
        drive(batched, ops, batched=True)

        assert mapping_snapshot(per_op) == mapping_snapshot(batched)
        assert stale_snapshot(per_op) == stale_snapshot(batched)
        assert per_op.metrics.summary() == batched.metrics.summary()
        assert per_op.clock.now_us == batched.clock.now_us


class TestCoalescedReplayEquivalence:
    """Coalescing merges commands but never changes logical contents."""

    def make_trace(self, seed, count, capacity):
        rng = random.Random(seed)
        records = []
        timestamp = 0
        cursor = 0
        for _ in range(count):
            timestamp += rng.randint(1, 50)
            npages = rng.choice([1, 1, 2, 4])
            roll = rng.random()
            if roll < 0.55:
                records.append(
                    TraceRecord(timestamp, TraceOp.WRITE, cursor % (capacity - 8), npages)
                )
                cursor += npages
            elif roll < 0.8:
                records.append(
                    TraceRecord(timestamp, TraceOp.READ, rng.randrange(capacity - 8), npages)
                )
            elif roll < 0.95:
                records.append(
                    TraceRecord(timestamp, TraceOp.TRIM, rng.randrange(capacity - 8), npages)
                )
            else:
                records.append(TraceRecord(timestamp, TraceOp.FLUSH, 0, 0))
        return records

    @pytest.mark.parametrize("seed", [5, 23])
    def test_live_contents_and_page_counters_match(self, seed):
        per_op = RSSD(RSSDConfig.tiny())
        batched = RSSD(RSSDConfig.tiny())
        trace = self.make_trace(seed, 3000, per_op.capacity_pages)
        result_a = TraceReplayer(per_op, honor_timestamps=True).replay(trace)
        result_b = BatchTraceReplayer(
            batched, honor_timestamps=True, max_batch_pages=32
        ).replay(trace)

        assert result_a.records_replayed == result_b.records_replayed == len(trace)
        # Logical state: every live LBA holds the same content version.
        live_a = {
            lpn: per_op.ssd.flash.read(meta.ppn).fingerprint
            for lpn, meta in per_op.ssd.ftl._mapping.items()
        }
        live_b = {
            lpn: batched.ssd.flash.read(meta.ppn).fingerprint
            for lpn, meta in batched.ssd.ftl._mapping.items()
        }
        assert live_a == live_b
        # Page-level traffic identical; command counts reflect merging.
        assert per_op.metrics.host_pages_written == batched.metrics.host_pages_written
        assert per_op.metrics.host_pages_read == batched.metrics.host_pages_read
        assert per_op.metrics.host_pages_trimmed == batched.metrics.host_pages_trimmed
        assert result_b.device_calls <= result_a.device_calls
        assert result_b.coalescing_factor >= 1.0

    def test_coalescing_respects_batch_cap_and_stream_boundaries(self):
        device = RSSD(RSSDConfig.tiny())
        trace = [
            TraceRecord(t, TraceOp.WRITE, lba=t, npages=1, stream_id=t % 2)
            for t in range(64)
        ]
        result = BatchTraceReplayer(
            device, honor_timestamps=False, max_batch_pages=16
        ).replay(trace)
        # Alternating streams break every run: no coalescing happens.
        assert result.device_calls == 64

    def test_oplog_covers_every_page_once(self):
        device = RSSD(RSSDConfig.tiny())
        trace = [
            TraceRecord(t, TraceOp.WRITE, lba=t, npages=1, stream_id=0)
            for t in range(40)
        ]
        result = BatchTraceReplayer(
            device, honor_timestamps=False, max_batch_pages=8
        ).replay(trace)
        assert result.device_calls == 5
        assert device.oplog.total_entries == 5
        # The aggregated entries still index every written LBA.
        for lba in range(40):
            assert device.oplog.entries_for_lba(lba)
