"""Tests for the RSSD facade and its configuration."""

import pytest

from repro.core.config import RSSDConfig
from repro.core.rssd import RSSD, build_rssd
from repro.ssd.device import HostOpType
from repro.ssd.errors import FirmwareProtectionError
from repro.ssd.flash import PageContent
from repro.ssd.geometry import SSDGeometry


class TestConfig:
    def test_presets(self):
        assert RSSDConfig.tiny().geometry.total_pages == 512
        assert RSSDConfig.small().geometry.total_pages > 512
        assert RSSDConfig.paper_prototype().geometry.raw_capacity_bytes > 10**12

    def test_validation(self):
        with pytest.raises(ValueError):
            RSSDConfig(link_bandwidth_gbps=0)
        with pytest.raises(ValueError):
            RSSDConfig(offload_batch_pages=0)
        with pytest.raises(ValueError):
            RSSDConfig(local_retention_fraction=0.0)
        with pytest.raises(ValueError):
            RSSDConfig(gc_threshold_blocks=1)


class TestRSSDFacade:
    def test_build_rssd_returns_working_device(self):
        rssd = build_rssd(RSSDConfig.tiny())
        rssd.write(0, b"hello rssd")
        assert rssd.read(0).startswith(b"hello rssd")
        assert rssd.capacity_pages == rssd.ssd.capacity_pages
        assert rssd.page_size == 4096

    def test_every_host_op_is_logged(self, rssd):
        rssd.write(0, b"a")
        rssd.read(0)
        rssd.trim(0)
        rssd.flush()
        assert rssd.oplog.total_entries == 4
        ops = [entry.op_type for entry in rssd.oplog.all_entries()]
        assert ops == [HostOpType.WRITE, HostOpType.READ, HostOpType.TRIM, HostOpType.FLUSH]

    def test_write_latency_includes_log_overhead(self, rssd, tiny_geometry):
        from repro.ssd.device import SSD

        plain = SSD(geometry=tiny_geometry)
        plain.write(0, b"data")
        rssd.write(0, b"data")
        overhead = rssd.config.latency.log_append_us
        assert rssd.metrics.latency["write"].mean_us == pytest.approx(
            plain.metrics.latency["write"].mean_us + overhead
        )

    def test_offload_happens_automatically_during_writes(self, rssd):
        for round_index in range(20):
            for lba in range(16):
                rssd.write(lba, PageContent.synthetic(round_index * 100 + lba, 4096))
        assert rssd.retained_pages_remote > 0
        assert rssd.remote_link_traffic() if hasattr(rssd, "remote_link_traffic") else True
        assert rssd.link.stats.wire_bytes_sent > 0

    def test_drain_offload_queue_empties_pending(self, rssd):
        for lba in range(32):
            rssd.write(lba, PageContent.synthetic(lba, 4096))
            rssd.write(lba, PageContent.synthetic(1000 + lba, 4096))
        rssd.drain_offload_queue()
        assert rssd.retention.pending_pages == 0
        assert rssd.offload.stats.pages_offloaded >= 32

    def test_nic_is_hardware_isolated_from_host(self, rssd):
        with pytest.raises(FirmwareProtectionError):
            rssd.nic.send_capsule(None, 4096)
        with pytest.raises(FirmwareProtectionError):
            rssd.nic.issue_firmware_token()

    def test_summary_reports_key_counters(self, rssd):
        rssd.write(0, b"data")
        rssd.write(0, b"data v2")
        rssd.drain_offload_queue()
        summary = rssd.summary()
        assert summary["host_writes"] == 2
        assert summary["data_loss_pages"] == 0
        assert summary["log_entries"] == 2
        assert 0 < summary["offload_compression_ratio"] <= 1.0

    def test_stream_ids_propagate_to_log(self, rssd):
        rssd.write(0, b"x", stream_id=5)
        assert rssd.oplog.all_entries()[0].stream_id == 5

    def test_services_are_constructible(self, rssd):
        rssd.write(0, b"x")
        assert rssd.recovery_engine() is not None
        assert rssd.analyzer() is not None
        assert rssd.remote_detector() is not None

    def test_doctest_example_in_module(self):
        rssd = build_rssd(RSSDConfig.small())
        rssd.write(lba=0, data=b"hello world")
        assert rssd.read(lba=0)[: len(b"hello world")] == b"hello world"
