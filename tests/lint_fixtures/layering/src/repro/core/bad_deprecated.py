"""Fixture: importing a deprecated entry point outside its shim (REPRO-L203)."""

from repro.campaign.roc import run_roc  # REPRO-L203 (+L201: upward edge)


def use() -> object:
    return run_roc
