"""Fixture: the ssd layer importing upward into campaign (REPRO-L201)."""

from repro.campaign.grid import CampaignGrid  # REPRO-L201: upward edge


def use() -> type:
    return CampaignGrid
