"""Fixture: campaign importing repro.api at module level (REPRO-L202)."""

from repro.api.spec import ScenarioSpec  # REPRO-L202: deferred edge at module level


def use() -> type:
    return ScenarioSpec
