"""Fixture: the deferred api edge taken correctly (no findings)."""

from typing import TYPE_CHECKING

from repro.campaign.grid import CampaignGrid  # same layer: fine

if TYPE_CHECKING:  # annotation-only: fine
    from repro.api.spec import ScenarioSpec


def build(defense: str, attack: str) -> "ScenarioSpec":
    from repro.api.spec import ScenarioSpec  # function-level: fine

    return ScenarioSpec(defense=defense, attack=attack)


def grid() -> type:
    return CampaignGrid
