"""Fixture: non-canonical artifact JSON in a sim layer (REPRO-S303)."""

import json


def dump(payload: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)  # REPRO-S303: no sort_keys


def dumps(payload: dict) -> str:
    return json.dumps(payload)  # REPRO-S303: no sort_keys
