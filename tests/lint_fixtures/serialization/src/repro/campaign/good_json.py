"""Fixture: canonical artifact JSON (no findings)."""

import json


def dump(payload: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def dumps(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)
