"""Fixture: pickle-unsafe pool submissions and hidden state (REPRO-C4xx)."""

from repro.campaign.cache import map_with_cache
from repro.campaign.runner import ExperimentRunner

results_cache = {}  # REPRO-C402: module-level mutable in a sim layer
seen = set()  # REPRO-C402


def sweep(specs: list) -> list:
    runner = ExperimentRunner(backend="process")
    return runner.map(lambda spec: spec, specs)  # REPRO-C401: lambda


def sweep_nested(specs: list) -> list:
    def run_one(spec: object) -> object:  # local def: not picklable
        return spec

    runner = ExperimentRunner(backend="process")
    return runner.map(run_one, specs)  # REPRO-C401: locally defined function


def sweep_cached(runner: object, cache: object, specs: list) -> list:
    return map_with_cache(
        runner, lambda spec: spec, specs, cache=cache  # REPRO-C401: lambda
    )
