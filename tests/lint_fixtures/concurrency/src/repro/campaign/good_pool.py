"""Fixture: pickle-safe submissions and frozen module state (no findings)."""

from repro.campaign.runner import ExperimentRunner

KNOWN_BACKENDS = ("sequential", "thread", "process")  # frozen: fine
_SHARD_LIMIT = 64  # scalar: fine


def run_one(spec: object) -> object:
    """Module-level function: picklable under every backend."""
    return spec


def sweep(specs: list) -> list:
    runner = ExperimentRunner(backend="process")
    return runner.map(run_one, specs)  # module-level fn: fine


def sweep_threaded(specs: list, concurrent: bool) -> list:
    runner = ExperimentRunner(backend="thread" if concurrent else "sequential")
    return runner.map(lambda spec: spec, specs)  # never the process backend: fine
