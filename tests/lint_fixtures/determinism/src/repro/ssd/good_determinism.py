"""Fixture: the deterministic counterparts -- none of these may flag."""

import os
import random

import numpy as np


def draw(seed: int) -> float:
    rng = random.Random(seed)  # seeded instance: fine
    return rng.random()


def generator(seed: int):
    return np.random.default_rng(seed)  # seeded numpy generator: fine


def ordered(items: set) -> list:
    return sorted(items)  # defined order: fine


def loop(items: set) -> list:
    out = []
    for item in sorted(set(items)):  # sorted before iteration: fine
        out.append(item)
    return out


def membership(items: set, needle: object) -> bool:
    return needle in items  # order-insensitive consumer: fine


def count(items: set) -> int:
    return len(items) + sum(1 for _ in items if _ is not None)


def listing(path: str) -> list:
    return sorted(os.listdir(path))  # sorted listing: fine
