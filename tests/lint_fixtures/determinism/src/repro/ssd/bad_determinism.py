"""Fixture: every determinism rule violated in a sim layer (ssd)."""

import datetime
import os
import random
import time

import numpy as np

GLOBAL_RNG = random.Random(7)  # REPRO-D105: module-level rng instance


def draw() -> float:
    return random.random()  # REPRO-D101: global stream


def reseed() -> None:
    random.seed(42)  # REPRO-D101: global stream
    np.random.seed(42)  # REPRO-D102: numpy global state


def unseeded() -> random.Random:
    return random.Random()  # REPRO-D101: OS entropy


def now() -> float:
    return time.time()  # REPRO-D103: wall clock


def today() -> "datetime.datetime":
    return datetime.datetime.now()  # REPRO-D103: wall clock


def ordered(items: list) -> list:
    return list(set(items))  # REPRO-D104: materializes set order


def loop(items: set) -> list:
    out = []
    for item in set(items):  # REPRO-D104: iterating a set
        out.append(item)
    return out


def listing(path: str) -> list:
    return [name for name in os.listdir(path)]  # REPRO-D104: fs order
