"""The ``repro lint`` invariant checker: rules, baseline, self-check.

Fixture trees under ``tests/lint_fixtures/`` are laid out as fake
``src/repro`` packages so module resolution and layer lookup work on
them exactly as on the real tree.  Each rule family gets a positive
fixture (violations caught) and a negative one (clean code passes);
the schema and baseline lifecycles run against generated trees in
``tmp_path``; and the self-check asserts ``repro lint src/`` is clean
with **no** baseline, which is what the CI lint job enforces.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    BaselineError,
    FileContext,
    LayerModel,
    LintConfig,
    apply_baseline,
    lint_paths,
    load_baseline,
    module_name_for,
    prune_baseline,
    write_baseline,
    write_fingerprint,
)
from repro.lint.runner import build_contexts, discover_files
from repro.lint.serialization import check_schemas

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def run_fixture(case: str) -> list:
    """Lint one fixture tree (schema comparison off: no schemas there)."""
    config = LintConfig(root=FIXTURES / case, check_schemas=False)
    return lint_paths([FIXTURES / case], config)


def rules_for(findings: list, path_part: str) -> list:
    """The rule IDs reported against paths containing ``path_part``."""
    return [f.rule for f in findings if path_part in f.path]


# -- determinism rules -------------------------------------------------------


class TestDeterminismRules:
    def test_bad_fixture_catches_every_rule(self):
        findings = run_fixture("determinism")
        rules = rules_for(findings, "bad_determinism")
        assert rules.count("REPRO-D101") == 3  # random(), seed(), Random()
        assert "REPRO-D102" in rules  # np.random.seed
        assert rules.count("REPRO-D103") == 2  # time.time, datetime.now
        assert rules.count("REPRO-D104") == 3  # list(set), for-over-set, listdir
        assert "REPRO-D105" in rules  # module-level rng

    def test_good_fixture_is_clean(self):
        findings = run_fixture("determinism")
        assert rules_for(findings, "good_determinism") == []

    def test_seeded_wall_clock_violation_fails_the_run(self, tmp_path):
        # The acceptance check: drop time.time() into a sim-layer module
        # and the lint run must go red.
        kernel = tmp_path / "src" / "repro" / "ssd" / "kernel.py"
        kernel.parent.mkdir(parents=True)
        kernel.write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8",
        )
        config = LintConfig(root=tmp_path, check_schemas=False)
        findings = lint_paths([tmp_path], config)
        assert [f.rule for f in findings] == ["REPRO-D103"]
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", str(tmp_path), "--no-schema-check"])
        assert excinfo.value.code == 1


# -- layering rules ----------------------------------------------------------


class TestLayeringRules:
    def test_upward_edge_is_l201(self):
        findings = run_fixture("layering")
        assert rules_for(findings, "bad_upward") == ["REPRO-L201"]

    def test_module_level_deferred_edge_is_l202(self):
        findings = run_fixture("layering")
        assert rules_for(findings, "bad_deferred") == ["REPRO-L202"]

    def test_function_level_and_type_checking_edges_pass(self):
        findings = run_fixture("layering")
        assert rules_for(findings, "good_deferred") == []

    def test_deprecated_import_outside_shim_is_l203(self):
        findings = run_fixture("layering")
        rules = rules_for(findings, "bad_deprecated")
        assert "REPRO-L203" in rules
        assert "REPRO-L201" in rules  # core -> campaign is also upward


# -- serialization rules -----------------------------------------------------


SCHEMA_MODULE = '''"""Fixture schema module."""

from dataclasses import dataclass, field
from typing import Optional

SPEC_VERSION = {version}


@dataclass(frozen=True)
class Inner:
    """Nested dataclass reachable from the root."""

    depth: int = 0


@dataclass(frozen=True)
class RootSpec:
    """Root of the serialized object graph."""

    name: str = "x"
    inner: Optional[Inner] = None
{extra}    diagnostics: dict = field(default_factory=dict, compare=False)
'''

SCHEMA_LAYERS = """
schema = 1

[layers.api]
modules = ["repro.api"]
imports = []
deferred = []
deterministic = true
sim = true

[[schemas]]
name = "root_spec"
module = "repro.api.spec"
root = "RootSpec"
version_const = "SPEC_VERSION"
"""


class TestSchemaFingerprint:
    def make_tree(self, tmp_path: Path, version: int, extra: str = "") -> dict:
        spec = tmp_path / "src" / "repro" / "api" / "spec.py"
        spec.parent.mkdir(parents=True, exist_ok=True)
        spec.write_text(
            SCHEMA_MODULE.format(version=version, extra=extra), encoding="utf-8"
        )
        layers = tmp_path / "layers.toml"
        layers.write_text(SCHEMA_LAYERS, encoding="utf-8")
        model = LayerModel.load(layers)
        files = discover_files([tmp_path / "src"])
        by_module, _, _ = build_contexts(files, model, tmp_path)
        return {"model": model, "contexts": by_module, "layers": layers}

    def test_fingerprint_roundtrip_is_clean(self, tmp_path):
        tree = self.make_tree(tmp_path, version=1)
        pin = tmp_path / "fingerprint.json"
        write_fingerprint(tree["contexts"], tree["model"], pin)
        assert check_schemas(tree["contexts"], tree["model"], pin) == []

    def test_field_added_without_bump_is_s301(self, tmp_path):
        tree = self.make_tree(tmp_path, version=1)
        pin = tmp_path / "fingerprint.json"
        write_fingerprint(tree["contexts"], tree["model"], pin)
        drifted = self.make_tree(tmp_path, version=1, extra="    added: int = 0\n")
        findings = check_schemas(drifted["contexts"], drifted["model"], pin)
        assert [f.rule for f in findings] == ["REPRO-S301"]
        assert "SPEC_VERSION" in findings[0].message

    def test_field_added_with_bump_is_s302_until_regenerated(self, tmp_path):
        tree = self.make_tree(tmp_path, version=1)
        pin = tmp_path / "fingerprint.json"
        write_fingerprint(tree["contexts"], tree["model"], pin)
        bumped = self.make_tree(tmp_path, version=2, extra="    added: int = 0\n")
        findings = check_schemas(bumped["contexts"], bumped["model"], pin)
        assert [f.rule for f in findings] == ["REPRO-S302"]
        write_fingerprint(bumped["contexts"], bumped["model"], pin)
        assert check_schemas(bumped["contexts"], bumped["model"], pin) == []

    def test_compare_false_fields_are_not_schema(self, tmp_path):
        tree = self.make_tree(tmp_path, version=1)
        pin = tmp_path / "fingerprint.json"
        write_fingerprint(tree["contexts"], tree["model"], pin)
        payload = json.loads(pin.read_text(encoding="utf-8"))
        fields = payload["schemas"]["root_spec"]["classes"]["repro.api.spec.RootSpec"]
        assert "diagnostics" not in fields
        assert fields == ["inner", "name"]
        # reachability followed the Inner annotation
        assert "repro.api.spec.Inner" in payload["schemas"]["root_spec"]["classes"]

    def test_missing_fingerprint_file_is_s302(self, tmp_path):
        tree = self.make_tree(tmp_path, version=1)
        findings = check_schemas(
            tree["contexts"], tree["model"], tmp_path / "absent.json"
        )
        assert [f.rule for f in findings] == ["REPRO-S302"]

    def test_json_dump_fixtures(self):
        findings = run_fixture("serialization")
        assert rules_for(findings, "bad_json") == ["REPRO-S303", "REPRO-S303"]
        assert rules_for(findings, "good_json") == []


# -- concurrency rules -------------------------------------------------------


class TestConcurrencyRules:
    def test_bad_fixture(self):
        findings = run_fixture("concurrency")
        rules = rules_for(findings, "bad_pool")
        assert rules.count("REPRO-C401") == 3  # lambda, nested def, cached lambda
        assert rules.count("REPRO-C402") == 2  # dict and set module state

    def test_good_fixture(self):
        findings = run_fixture("concurrency")
        assert rules_for(findings, "good_pool") == []


# -- baseline lifecycle ------------------------------------------------------


class TestBaselineLifecycle:
    def setup_tree(self, tmp_path: Path) -> Path:
        tree = tmp_path / "tree"
        shutil.copytree(FIXTURES / "determinism", tree)
        return tree

    def lint(self, tree: Path) -> list:
        return lint_paths([tree], LintConfig(root=tree, check_schemas=False))

    def test_baseline_suppresses_known_findings(self, tmp_path):
        tree = self.setup_tree(tmp_path)
        findings = self.lint(tree)
        assert findings
        baseline = tmp_path / "lint_baseline.json"
        write_baseline(baseline, findings)
        result = apply_baseline(self.lint(tree), load_baseline(baseline))
        assert result.new == []
        assert len(result.suppressed) == len(findings)
        assert result.stale == []

    def test_baseline_refuses_overwrite(self, tmp_path):
        tree = self.setup_tree(tmp_path)
        baseline = tmp_path / "lint_baseline.json"
        write_baseline(baseline, self.lint(tree))
        with pytest.raises(BaselineError):
            write_baseline(baseline, [])

    def test_baseline_survives_line_drift(self, tmp_path):
        tree = self.setup_tree(tmp_path)
        baseline = tmp_path / "lint_baseline.json"
        write_baseline(baseline, self.lint(tree))
        bad = tree / "src" / "repro" / "ssd" / "bad_determinism.py"
        bad.write_text(
            "# pushed down two lines\n# by this header\n"
            + bad.read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        result = apply_baseline(self.lint(tree), load_baseline(baseline))
        assert result.new == []
        assert result.stale == []

    def test_stale_entries_reported_and_pruned(self, tmp_path):
        tree = self.setup_tree(tmp_path)
        baseline = tmp_path / "lint_baseline.json"
        write_baseline(baseline, self.lint(tree))
        bad = tree / "src" / "repro" / "ssd" / "bad_determinism.py"
        source = bad.read_text(encoding="utf-8")
        bad.write_text(
            source.replace("return time.time()  # REPRO-D103: wall clock",
                           "return 0.0"),
            encoding="utf-8",
        )
        result = apply_baseline(self.lint(tree), load_baseline(baseline))
        assert result.new == []
        assert len(result.stale) == 1
        assert result.stale[0]["rule"] == "REPRO-D103"
        removed = prune_baseline(baseline, result)
        assert removed == 1
        rerun = apply_baseline(self.lint(tree), load_baseline(baseline))
        assert rerun.stale == []
        assert rerun.new == []

    def test_new_finding_is_not_suppressed(self, tmp_path):
        tree = self.setup_tree(tmp_path)
        baseline = tmp_path / "lint_baseline.json"
        write_baseline(baseline, self.lint(tree))
        good = tree / "src" / "repro" / "ssd" / "good_determinism.py"
        good.write_text(
            good.read_text(encoding="utf-8")
            + "\n\ndef fresh():\n    import time\n    return time.time()\n",
            encoding="utf-8",
        )
        result = apply_baseline(self.lint(tree), load_baseline(baseline))
        assert [f.rule for f in result.new] == ["REPRO-D103"]


# -- CLI surface -------------------------------------------------------------


class TestCliSurface:
    def test_json_format(self, tmp_path, capsys):
        tree = tmp_path / "src" / "repro" / "ssd"
        tree.mkdir(parents=True)
        (tree / "bad.py").write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8",
        )
        with pytest.raises(SystemExit):
            main([
                "lint", str(tmp_path), "--format", "json", "--no-schema-check",
            ])
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "REPRO-D103"
        assert payload["suppressed"] == 0

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        tree = tmp_path / "src" / "repro" / "ssd"
        tree.mkdir(parents=True)
        (tree / "ok.py").write_text(
            '"""Clean module."""\n\nVALUE = 1\n', encoding="utf-8"
        )
        assert main(["lint", str(tmp_path), "--no-schema-check"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out


# -- self-check and layer-table pins -----------------------------------------


class TestSelfCheck:
    def test_src_is_clean_with_no_baseline(self):
        findings = lint_paths(
            [REPO_ROOT / "src"], LintConfig(root=REPO_ROOT)
        )
        assert findings == [], "\n".join(f.format() for f in findings)


class TestLayersToml:
    def test_every_repro_package_has_a_layer(self):
        model = LayerModel.load()
        src = REPO_ROOT / "src" / "repro"
        for pkg in sorted(p.name for p in src.iterdir() if p.is_dir()):
            if pkg == "__pycache__":
                continue
            assert model.layer_of(f"repro.{pkg}") is not None, pkg

    def test_layer_imports_reference_known_layers(self):
        model = LayerModel.load()
        for layer in model.layers.values():
            for name in tuple(layer.imports) + tuple(layer.deferred):
                assert name in model.layers, f"{layer.name} -> {name}"

    def test_schema_table_matches_real_modules(self):
        model = LayerModel.load()
        for spec in model.schemas:
            path = REPO_ROOT / "src" / Path(*spec.module.split("."))
            source = path.with_suffix(".py").read_text(encoding="utf-8")
            assert f"class {spec.root}" in source, spec.name
            assert spec.version_const in source, spec.name

    def test_deprecated_entries_match_real_shims(self):
        model = LayerModel.load()
        for entry in model.deprecated:
            path = REPO_ROOT / "src" / Path(*entry.module.split("."))
            source = path.with_suffix(".py").read_text(encoding="utf-8")
            assert entry.symbol in source, entry.name
            assert f'warn_once(\n        "{entry.name}"' in source or \
                f'warn_once("{entry.name}"' in source, entry.name

    def test_architecture_doc_points_at_the_table(self):
        doc = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
        assert "layers.toml" in doc

    def test_fallback_parser_agrees_with_tomllib(self):
        from repro.lint.layers import DEFAULT_LAYERS_PATH, _parse_toml_subset

        tomllib = pytest.importorskip("tomllib")
        text = DEFAULT_LAYERS_PATH.read_text(encoding="utf-8")
        assert _parse_toml_subset(text) == tomllib.loads(text)


class TestContext:
    def test_module_name_for(self):
        assert (
            module_name_for(Path("/x/src/repro/ssd/kernel.py")) == "repro.ssd.kernel"
        )
        assert module_name_for(Path("/x/src/repro/api/__init__.py")) == "repro.api"
        assert module_name_for(Path("/x/other/thing.py")) is None

    def test_resolve_through_aliases(self, tmp_path):
        source = (
            "import numpy as np\n"
            "from datetime import datetime\n"
            "x = np.random.seed\n"
            "y = datetime.now\n"
        )
        ctx = FileContext(tmp_path / "m.py", source)
        import ast

        assigns = [n for n in ast.walk(ctx.tree) if isinstance(n, ast.Assign)]
        assert ctx.resolve(assigns[0].value) == "numpy.random.seed"
        assert ctx.resolve(assigns[1].value) == "datetime.datetime.now"
