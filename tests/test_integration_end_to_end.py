"""End-to-end integration tests: the full attack → detect → recover → investigate loop."""

import pytest

from repro.api import provision_environment
from repro.attacks.classic import ClassicRansomware, DestructionMode
from repro.attacks.gc_attack import GCAttack
from repro.attacks.timing_attack import TimingAttack
from repro.attacks.trimming_attack import TrimmingAttack
from repro.core.config import RSSDConfig
from repro.core.rssd import RSSD
from repro.host.blockdev import HostBlockDevice
from repro.host.filesystem import SimpleFS
from repro.ssd.geometry import SSDGeometry
from repro.workloads.replay import TraceReplayer
from repro.workloads.synthetic import ZipfianWorkload


def restore_files(rssd, env, outcome):
    """Recover victim data and rebuild any deleted namespace entries."""
    report = rssd.recovery_engine().undo_attack(outcome.start_us, outcome.malicious_streams)
    recovered = {}
    for name, original in outcome.original_contents.items():
        if env.fs.exists(name):
            recovered[name] = env.fs.read_file(name)
        else:
            extent = outcome.original_extents[name]
            recovered[name] = b"".join(rssd.read(lba) for lba in extent)[: len(original)]
    return report, recovered


@pytest.mark.parametrize(
    "attack_factory",
    [
        lambda: ClassicRansomware(destruction=DestructionMode.OVERWRITE),
        lambda: ClassicRansomware(destruction=DestructionMode.DELETE),
        lambda: GCAttack(),
        lambda: TimingAttack(camouflage_writes_per_batch=8),
        lambda: TrimmingAttack(),
    ],
    ids=["classic-overwrite", "classic-delete", "gc", "timing", "trimming"],
)
def test_full_loop_every_attack_is_recovered_and_attributed(attack_factory):
    rssd = RSSD(config=RSSDConfig.tiny())
    env = provision_environment(rssd, victim_files=16, file_size_bytes=8192)
    attack = attack_factory()
    outcome = attack.execute(env)
    rssd.drain_offload_queue()

    # 1. Zero data loss: every victim file's bytes are recoverable.
    report, recovered = restore_files(rssd, env, outcome)
    assert report.recovered_everything
    for name, original in outcome.original_contents.items():
        assert recovered[name] == original, name

    # 2. The retention invariant held throughout.
    assert rssd.data_loss_pages == 0

    # 3. The offloaded detector identifies the attack and the evidence chain
    #    verifies and points at the right stream.
    detection = rssd.detect()
    assert detection.detected
    investigation = rssd.investigate()
    assert investigation.chain_verified
    assert env.attacker_stream in investigation.suspected_streams


def test_background_workload_interleaved_with_attack_still_recovers_cleanly():
    rssd = RSSD(config=RSSDConfig.tiny())
    env = provision_environment(rssd, victim_files=10, file_size_bytes=8192)

    # Interleave user traffic (upper half of the address space) with the attack.
    workload = ZipfianWorkload(
        capacity_pages=rssd.capacity_pages // 4,
        iops=400,
        write_fraction=0.5,
        seed=3,
        stream_id=env.user_stream,
    )
    TraceReplayer(rssd, honor_timestamps=False).replay(workload.generate(0.5))

    outcome = ClassicRansomware().execute(env)
    TraceReplayer(rssd, honor_timestamps=False).replay(workload.generate(0.2))
    rssd.drain_offload_queue()

    report, recovered = restore_files(rssd, env, outcome)
    assert report.recovered_everything
    for name, original in outcome.original_contents.items():
        assert recovered[name] == original


def test_remote_tier_holds_compressed_encrypted_history_in_order():
    rssd = RSSD(config=RSSDConfig.tiny())
    env = provision_environment(rssd, victim_files=12, file_size_bytes=8192)
    ClassicRansomware().execute(env)
    rssd.drain_offload_queue()
    assert rssd.remote.stored_entries > 0
    assert rssd.remote.verify_time_order()
    assert rssd.offload.stats.compression_ratio < 1.0
    assert rssd.offload.protocol.verify_ordering()


def test_same_scenario_on_plain_ssd_loses_data():
    """The contrast case: without RSSD the trimming attack destroys data."""
    from repro.ssd.device import SSD

    device = SSD(geometry=SSDGeometry.tiny())
    env = provision_environment(device, victim_files=12, file_size_bytes=8192)
    outcome = TrimmingAttack().execute(env)
    lost = 0
    for lba in outcome.victim_lbas:
        content = device.read_content(lba)
        if content is None or content.fingerprint != outcome.original_fingerprints.get(lba):
            lost += 1
    assert lost == len(outcome.victim_lbas)


def test_filesystem_rebuilt_from_recovered_extents_is_usable():
    rssd = RSSD(config=RSSDConfig.tiny())
    env = provision_environment(rssd, victim_files=8, file_size_bytes=8192)
    outcome = TrimmingAttack().execute(env)
    rssd.recovery_engine().undo_attack(outcome.start_us, outcome.malicious_streams)

    # Re-create the namespace on a fresh file system view and keep using it.
    blockdev = HostBlockDevice(rssd, stream_id=env.user_stream)
    for name, extent in outcome.original_extents.items():
        data = b"".join(rssd.read(lba) for lba in extent)[: len(outcome.original_contents[name])]
        assert data == outcome.original_contents[name]
