"""Tests for the hardware-assisted operation log."""

import pytest

from repro.core.oplog import LogEntry, OperationLog
from repro.ssd.device import HostOp, HostOpType
from repro.ssd.flash import PageContent


def host_op(sequence, op_type=HostOpType.WRITE, lba=0, ts=1000, stream=1, entropy=3.0):
    content = None
    if op_type is HostOpType.WRITE:
        content = PageContent.synthetic(fingerprint=sequence, length=4096, entropy=entropy)
    return HostOp(
        sequence=sequence,
        op_type=op_type,
        lba=lba,
        npages=1,
        timestamp_us=ts,
        latency_us=10.0,
        content=content,
        stream_id=stream,
    )


class TestLogAppend:
    def test_appends_in_order(self):
        log = OperationLog(segment_entries=100)
        for index in range(10):
            log.on_host_op(host_op(index, lba=index))
        assert log.total_entries == 10
        assert [entry.sequence for entry in log.all_entries()] == list(range(10))

    def test_out_of_order_append_rejected(self):
        log = OperationLog()
        entry = LogEntry(5, 0, HostOpType.WRITE, 0, 1, 0, 0.0, 0)
        with pytest.raises(ValueError):
            log.append(entry)

    def test_segments_sealed_at_interval(self):
        log = OperationLog(segment_entries=8)
        for index in range(20):
            log.on_host_op(host_op(index))
        assert len(log.sealed_segments()) == 2
        assert log.open_entries == 4
        segment = log.sealed_segments()[0]
        assert segment.entry_count == 8
        assert segment.first_sequence == 0
        assert segment.last_sequence == 7

    def test_manual_seal(self):
        log = OperationLog(segment_entries=1000)
        for index in range(5):
            log.on_host_op(host_op(index))
        segment = log.seal_segment()
        assert segment is not None
        assert log.open_entries == 0
        assert log.seal_segment() is None

    def test_unoffloaded_filter(self):
        log = OperationLog(segment_entries=4)
        for index in range(8):
            log.on_host_op(host_op(index))
        segments = log.sealed_segments()
        segments[0].offloaded = True
        assert len(log.sealed_segments(unoffloaded_only=True)) == 1


class TestLogQueries:
    def test_entries_for_lba(self):
        log = OperationLog()
        log.on_host_op(host_op(0, lba=5))
        log.on_host_op(host_op(1, lba=9))
        log.on_host_op(host_op(2, lba=5, op_type=HostOpType.READ))
        entries = log.entries_for_lba(5)
        assert [entry.sequence for entry in entries] == [0, 2]

    def test_entries_for_multi_page_op_indexed_for_every_lba(self):
        log = OperationLog()
        op = HostOp(0, HostOpType.WRITE, lba=10, npages=3, timestamp_us=0, latency_us=1.0,
                    content=PageContent.synthetic(1, 4096), stream_id=1)
        log.on_host_op(op)
        assert log.entries_for_lba(12)
        assert not log.entries_for_lba(13)

    def test_entries_between_timestamps(self):
        log = OperationLog()
        for index, ts in enumerate((100, 200, 300, 400)):
            log.on_host_op(host_op(index, ts=ts))
        selected = log.entries_between(start_us=150, end_us=350)
        assert [entry.timestamp_us for entry in selected] == [200, 300]

    def test_entries_for_stream(self):
        log = OperationLog()
        log.on_host_op(host_op(0, stream=1))
        log.on_host_op(host_op(1, stream=2))
        log.on_host_op(host_op(2, stream=2))
        assert len(log.entries_for_stream(2)) == 2


class TestLogIntegrity:
    def test_verify_clean_log(self):
        log = OperationLog(segment_entries=16)
        for index in range(40):
            log.on_host_op(host_op(index))
        assert log.verify_integrity()

    def test_tampered_entry_detected(self):
        log = OperationLog(checkpoint_interval=8)
        for index in range(30):
            log.on_host_op(host_op(index, lba=index))
        entries = log.all_entries()
        forged = LogEntry(
            sequence=entries[10].sequence,
            timestamp_us=entries[10].timestamp_us,
            op_type=entries[10].op_type,
            lba=999,  # the attacker rewrites history to hide the victim LBA
            npages=1,
            stream_id=entries[10].stream_id,
            entropy=entries[10].entropy,
            fingerprint=entries[10].fingerprint,
        )
        tampered = entries[:10] + [forged] + entries[11:]
        assert not log.verify_integrity(tampered)
        divergence = log.find_tampering(tampered)
        assert divergence is not None and divergence >= 10

    def test_truncated_log_detected(self):
        log = OperationLog()
        for index in range(10):
            log.on_host_op(host_op(index))
        assert not log.verify_integrity(log.all_entries()[:-2])

    def test_entry_serialisation_is_stable(self):
        entry = LogEntry(1, 2, HostOpType.TRIM, 3, 4, 5, 6.0, 7)
        assert entry.to_bytes() == entry.to_bytes()
        other = LogEntry(1, 2, HostOpType.TRIM, 3, 4, 5, 6.0, 8)
        assert entry.to_bytes() != other.to_bytes()
